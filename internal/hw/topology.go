package hw

import (
	"fmt"
	"strings"
)

// Spec declares a regular single-node topology by the number of children
// each object has at every containment depth. A width of 1 makes the level
// structurally transparent (present but trivial), which is how
// architectures that lack a level (e.g. no L3) are expressed.
type Spec struct {
	Boards  int // boards per machine
	Sockets int // sockets per board
	NUMAs   int // NUMA domains per socket
	L3s     int // L3 caches per NUMA domain
	L2s     int // L2 caches per L3
	L1s     int // L1 caches per L2
	Cores   int // cores per L1
	PUs     int // hardware threads per core

	// ThreadMajorOS, when true, numbers PU OS indices thread-major the way
	// Linux often does (all first hyperthreads 0..C-1, then all second
	// hyperthreads C..2C-1). When false, PUs are numbered sequentially in
	// tree order (core 0 holds PUs 0..T-1).
	ThreadMajorOS bool
}

// widths returns the per-level child widths indexed by Level depth.
// Index 0 (machine) is unused and set to 1.
func (sp Spec) widths() [NumLevels]int {
	return [NumLevels]int{
		1, sp.Boards, sp.Sockets, sp.NUMAs, sp.L3s, sp.L2s, sp.L1s, sp.Cores, sp.PUs,
	}
}

// MaxSpecPUs bounds how many PUs one spec-built machine may declare
// (2^20, far beyond real hardware). Validate enforces it with an
// overflow-safe running product, so parse surfaces fed hostile widths
// ("9999999:9999999:...") fail with an error instead of attempting a
// multi-gigabyte tree build — or silently overflowing TotalPUs.
const MaxSpecPUs = 1 << 20

// Validate checks that all widths are at least 1 and that the machine
// stays within MaxSpecPUs total PUs.
func (sp Spec) Validate() error {
	w := sp.widths()
	n := 1
	for d := 1; d < NumLevels; d++ {
		if w[d] < 1 {
			return fmt.Errorf("hw: spec has non-positive width %d for %s", w[d], Level(d))
		}
		if w[d] > MaxSpecPUs/n {
			return fmt.Errorf("hw: spec describes more than %d PUs", MaxSpecPUs)
		}
		n *= w[d]
	}
	return nil
}

// TotalPUs returns the number of PUs a machine built from the spec has.
func (sp Spec) TotalPUs() int {
	n := 1
	for _, w := range sp.widths() {
		n *= w
	}
	return n
}

// TotalCores returns the number of cores a machine built from the spec has.
func (sp Spec) TotalCores() int { return sp.TotalPUs() / sp.PUs }

// String renders the spec compactly, e.g. "1b x 2s x 1N x 1L3 x 4L2 x 1L1 x 1c x 2h".
func (sp Spec) String() string {
	w := sp.widths()
	parts := make([]string, 0, NumLevels-1)
	for d := 1; d < NumLevels; d++ {
		parts = append(parts, fmt.Sprintf("%d%s", w[d], Level(d).Abbrev()))
	}
	return strings.Join(parts, " x ")
}

// Topology is a single node's hardware tree plus per-level indexes.
//
// Mutations must go through Topology methods (SetAvailable, Restrict,
// Offline, RemoveObject, UnmarshalJSON): each of them advances the
// topology's generation counter, which is how downstream caches (the
// mapping engine's pruned-tree and usable-PU caches) learn that their
// snapshot is stale. Writing Object.Available directly bypasses that
// contract and may leave caches serving pre-mutation state.
type Topology struct {
	// Root is the machine object.
	Root *Object

	byLevel [NumLevels][]*Object

	// gen counts availability and structural mutations; see Generation.
	gen uint64
	// shapeSig caches the structural signature; see ShapeSig.
	shapeSig string
}

// Generation returns the topology's mutation counter. It starts at zero
// and increases on every availability or structural change made through
// the Topology API, so holders of derived data (pruned trees, usable-PU
// lists) can cheaply detect staleness by comparing generations.
func (t *Topology) Generation() uint64 { return t.gen }

// bump records a mutation: caches keyed by the previous generation are now
// stale. Structural mutations additionally clear the shape signature.
//
//lama:mutator
func (t *Topology) bump() { t.gen++ }

// New builds a regular topology tree from the spec. It panics if the spec
// is invalid (programmer error); use Spec.Validate to check first.
//
//lama:mutator
func New(sp Spec) *Topology {
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	widths := sp.widths()
	t := &Topology{}
	counters := [NumLevels]int{}
	var build func(level Level, parent *Object, rank int) *Object
	build = func(level Level, parent *Object, rank int) *Object {
		o := &Object{
			Level:     level,
			Logical:   counters[level],
			Rank:      rank,
			OS:        -1,
			Parent:    parent,
			Available: true,
		}
		counters[level]++
		t.byLevel[level] = append(t.byLevel[level], o)
		if level < LevelPU {
			next := level + 1
			o.Children = make([]*Object, widths[next])
			for i := range o.Children {
				o.Children[i] = build(next, o, i)
			}
		}
		return o
	}
	t.Root = build(LevelMachine, nil, 0)

	// Assign PU OS indices.
	pus := t.byLevel[LevelPU]
	if sp.ThreadMajorOS {
		cores := len(t.byLevel[LevelCore])
		for _, pu := range pus {
			core := pu.Parent
			pu.OS = pu.Rank*cores + core.Logical
		}
	} else {
		for i, pu := range pus {
			pu.OS = i
		}
	}
	return t
}

// Objects returns all objects at the given level in logical order. The
// returned slice must not be modified.
func (t *Topology) Objects(level Level) []*Object { return t.byLevel[level] }

// NumObjects returns the number of objects at the given level.
func (t *Topology) NumObjects(level Level) int { return len(t.byLevel[level]) }

// NumPUs returns the total number of PUs (available or not).
func (t *Topology) NumPUs() int { return len(t.byLevel[LevelPU]) }

// NumUsablePUs returns the number of PUs whose ancestor chain is available.
func (t *Topology) NumUsablePUs() int { return len(t.Root.UsablePUs()) }

// ObjectAt returns the object with the given machine-wide logical index at
// a level, or nil if out of range.
func (t *Topology) ObjectAt(level Level, logical int) *Object {
	objs := t.byLevel[level]
	if logical < 0 || logical >= len(objs) {
		return nil
	}
	return objs[logical]
}

// PUByOS returns the PU object with the given OS index, or nil.
func (t *Topology) PUByOS(os int) *Object {
	for _, pu := range t.byLevel[LevelPU] {
		if pu.OS == os {
			return pu
		}
	}
	return nil
}

// MaxChildren returns the largest number of children any object at the
// given level has (0 for PUs). This is the per-level width used when
// assembling a maximal tree.
func (t *Topology) MaxChildren(level Level) int {
	max := 0
	for _, o := range t.byLevel[level] {
		if len(o.Children) > max {
			max = len(o.Children)
		}
	}
	return max
}

// CommonAncestorLevel returns the level of the lowest common ancestor of
// the PUs with OS indices a and b. Identical indices return LevelPU.
// Unknown indices return LevelMachine.
func (t *Topology) CommonAncestorLevel(a, b int) Level {
	if a == b {
		return LevelPU
	}
	pa, pb := t.PUByOS(a), t.PUByOS(b)
	if pa == nil || pb == nil {
		return LevelMachine
	}
	seen := map[*Object]bool{}
	for x := pa; x != nil; x = x.Parent {
		seen[x] = true
	}
	for x := pb; x != nil; x = x.Parent {
		if seen[x] {
			return x.Level
		}
	}
	return LevelMachine
}

// SetAvailable marks the object at (level, logical) available or not.
// It returns false if no such object exists.
//
//lama:mutator
func (t *Topology) SetAvailable(level Level, logical int, avail bool) bool {
	o := t.ObjectAt(level, logical)
	if o == nil {
		return false
	}
	o.Available = avail
	t.bump()
	return true
}

// Restrict marks unavailable every PU whose OS index is outside allowed,
// simulating a scheduler or cgroup restriction (paper §III-A). Interior
// objects are left available; they become effectively unusable when all of
// their PUs are disallowed.
//
//lama:mutator
func (t *Topology) Restrict(allowed *CPUSet) {
	for _, pu := range t.byLevel[LevelPU] {
		if !allowed.Contains(pu.OS) {
			pu.Available = false
		}
	}
	t.bump()
}

// Offline marks the PUs with the given OS indices unavailable — the
// inverse selection of Restrict, used for partial failures (a dead core's
// threads) and for withholding already-claimed PUs from an incremental
// remap. It returns the number of PUs that changed from available to
// unavailable.
//
//lama:mutator
func (t *Topology) Offline(pus *CPUSet) int {
	if pus == nil {
		return 0
	}
	changed := 0
	for _, pu := range t.byLevel[LevelPU] {
		if pus.Contains(pu.OS) && pu.Available {
			pu.Available = false
			changed++
		}
	}
	if changed > 0 {
		t.bump()
	}
	return changed
}

// AllowedSet returns the CPUSet of usable PU OS indices.
func (t *Topology) AllowedSet() *CPUSet { return t.Root.UsablePUSet() }

// RemoveObject structurally removes the object at (level, logical) and its
// subtree, renumbering logical indices and sibling ranks, to model truly
// irregular hardware (e.g. a board with a missing socket). The machine root
// cannot be removed. It returns false if no such object exists.
//
//lama:mutator
func (t *Topology) RemoveObject(level Level, logical int) bool {
	o := t.ObjectAt(level, logical)
	if o == nil || o.Parent == nil {
		return false
	}
	p := o.Parent
	kept := p.Children[:0]
	for _, c := range p.Children {
		if c != o {
			kept = append(kept, c)
		}
	}
	p.Children = kept
	t.reindex()
	return true
}

// reindex rebuilds per-level indexes, logical numbers, sibling ranks, and
// clears cached PU sets and the shape signature after a structural
// mutation.
//
//lama:mutator
func (t *Topology) reindex() {
	t.bump()
	t.shapeSig = ""
	for l := range t.byLevel {
		t.byLevel[l] = t.byLevel[l][:0]
	}
	var walk func(o *Object, rank int)
	walk = func(o *Object, rank int) {
		o.Rank = rank
		o.Logical = len(t.byLevel[o.Level])
		o.puset = nil
		t.byLevel[o.Level] = append(t.byLevel[o.Level], o)
		for i, c := range o.Children {
			walk(c, i)
		}
	}
	walk(t.Root, 0)
}

// Clone returns a deep copy of the topology (objects, availability,
// numbering). The clone starts at generation zero with no cached PU sets:
// it has no cache entries of its own yet, so resetting rather than copying
// the memoized state is the correct copy.
//
//lama:mutator
//lama:cow Topology
//lama:cow Object
func (t *Topology) Clone() *Topology {
	c := &Topology{}
	c.gen = 0 // excluded from the copy: a fresh tree has no stale caches
	var copyObj func(o *Object, parent *Object) *Object
	copyObj = func(o *Object, parent *Object) *Object {
		n := &Object{
			Level:     o.Level,
			Logical:   o.Logical,
			Rank:      o.Rank,
			OS:        o.OS,
			Parent:    parent,
			Available: o.Available,
		}
		c.byLevel[n.Level] = append(c.byLevel[n.Level], n)
		n.puset = nil // excluded from the copy: memoized, rebuilt on demand
		n.Children = make([]*Object, len(o.Children))
		for i, ch := range o.Children {
			n.Children[i] = copyObj(ch, n)
		}
		return n
	}
	c.Root = copyObj(t.Root, nil)
	c.shapeSig = t.shapeSig
	return c
}

// ShapeSig returns a signature of the topology's structure: the levels and
// child counts of the tree in DFS order, ignoring availability. Two
// topologies with equal signatures are structurally identical, so derived
// availability-independent data (pruned iteration trees) can be shared
// between them — the nodes of a homogeneous cluster all report the same
// signature. The signature is cached; structural mutations invalidate it.
func (t *Topology) ShapeSig() string {
	if t.shapeSig != "" {
		return t.shapeSig
	}
	var sig []byte
	var walk func(o *Object)
	walk = func(o *Object) {
		sig = append(sig, byte(o.Level), byte(len(o.Children)>>8), byte(len(o.Children)))
		for _, c := range o.Children {
			walk(c)
		}
	}
	walk(t.Root)
	t.shapeSig = string(sig) //lama:mutation-ok memoized fill: idempotent, derived only from frozen structure
	return t.shapeSig
}

// Summary renders a one-line shape summary such as
// "2 sockets, 8 cores, 16 PUs (14 usable)".
func (t *Topology) Summary() string {
	return fmt.Sprintf("%d boards, %d sockets, %d numas, %d cores, %d PUs (%d usable)",
		t.NumObjects(LevelBoard), t.NumObjects(LevelSocket), t.NumObjects(LevelNUMA),
		t.NumObjects(LevelCore), t.NumPUs(), t.NumUsablePUs())
}
