package hw

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Preset topologies modeled loosely on real server nodes of the paper's era
// (2011). Widths are per DESIGN.md §6 containment order; none of these is a
// byte-exact hwloc dump — they are shape-faithful simulation inputs.
var presets = map[string]Spec{
	// Two quad-core Nehalem-EP sockets with SMT-2; one NUMA domain and one
	// shared L3 per socket; private L2/L1 per core.
	"nehalem-ep": {Boards: 1, Sockets: 2, NUMAs: 1, L3s: 1, L2s: 4, L1s: 1, Cores: 1, PUs: 2, ThreadMajorOS: true},
	// Four-socket AMD Magny-Cours: each socket holds two NUMA dies of six
	// cores sharing an L3; no SMT.
	"magny-cours": {Boards: 1, Sockets: 4, NUMAs: 2, L3s: 1, L2s: 6, L1s: 1, Cores: 1, PUs: 1},
	// Dual-socket POWER7-like: 8 cores per socket, SMT-4, L3 per core pair.
	"power7": {Boards: 1, Sockets: 2, NUMAs: 1, L3s: 4, L2s: 2, L1s: 1, Cores: 1, PUs: 4},
	// BlueGene/P-like compute node: one quad-core chip, no SMT.
	"bgp-node": {Boards: 1, Sockets: 1, NUMAs: 1, L3s: 1, L2s: 4, L1s: 1, Cores: 1, PUs: 1},
	// Two-board SMP with two small sockets per board (exercises "b").
	"dual-board": {Boards: 2, Sockets: 2, NUMAs: 1, L3s: 1, L2s: 2, L1s: 1, Cores: 1, PUs: 2},
	// The reconstructed Figure 2 node: 2 sockets x 3 cores x 2 hwthreads.
	"fig2": {Boards: 1, Sockets: 2, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 3, PUs: 2},
	// A Figure 2 variant with 4 sockets x 3 cores, single-threaded.
	"fig2-wide": {Boards: 1, Sockets: 4, NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: 3, PUs: 1},
}

// Preset returns the named preset spec. The boolean is false if the name is
// unknown.
func Preset(name string) (Spec, bool) {
	sp, ok := presets[name]
	return sp, ok
}

// PresetNames returns the sorted list of preset names.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FormatSpec renders a spec as the colon form "b:s:N:L3:L2:L1:c:h",
// e.g. "1:2:1:1:4:1:1:2".
func FormatSpec(sp Spec) string {
	w := sp.widths()
	parts := make([]string, 0, NumLevels-1)
	for d := 1; d < NumLevels; d++ {
		parts = append(parts, strconv.Itoa(w[d]))
	}
	return strings.Join(parts, ":")
}

// ParseSpec parses either a preset name ("nehalem-ep"), the full colon form
// "b:s:N:L3:L2:L1:c:h", or the short colon form "s:c:h" (boards, NUMA and
// caches default to width 1).
func ParseSpec(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	if sp, ok := Preset(text); ok {
		return sp, nil
	}
	parts := strings.Split(text, ":")
	nums := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return Spec{}, fmt.Errorf("hw: bad spec %q: element %q", text, p)
		}
		nums[i] = v
	}
	var sp Spec
	switch len(nums) {
	case 3: // s:c:h
		sp = Spec{Boards: 1, Sockets: nums[0], NUMAs: 1, L3s: 1, L2s: 1, L1s: 1, Cores: nums[1], PUs: nums[2]}
	case 8: // b:s:N:L3:L2:L1:c:h
		sp = Spec{
			Boards: nums[0], Sockets: nums[1], NUMAs: nums[2], L3s: nums[3],
			L2s: nums[4], L1s: nums[5], Cores: nums[6], PUs: nums[7],
		}
	default:
		return Spec{}, fmt.Errorf("hw: bad spec %q: want preset name, s:c:h, or 8 colon-separated widths", text)
	}
	// Validate here, not just at tree-build time: parsed specs come from
	// untrusted surfaces (hostfiles, CLI flags) and hw.New panics on
	// invalid input.
	if err := sp.Validate(); err != nil {
		return Spec{}, fmt.Errorf("hw: bad spec %q: %v", text, err)
	}
	return sp, nil
}
