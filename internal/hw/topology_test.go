package hw

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func nehalem(t *testing.T) *Topology {
	t.Helper()
	sp, ok := Preset("nehalem-ep")
	if !ok {
		t.Fatal("missing preset")
	}
	return New(sp)
}

func TestLevelTable(t *testing.T) {
	// Paper Table I: the nine levels and their abbreviations.
	want := map[Level]string{
		LevelMachine: "n", LevelBoard: "b", LevelSocket: "s",
		LevelCore: "c", LevelPU: "h",
		LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelNUMA: "N",
	}
	if len(want) != NumLevels {
		t.Fatalf("expected %d levels", NumLevels)
	}
	for l, ab := range want {
		if l.Abbrev() != ab {
			t.Errorf("%s abbrev = %q, want %q", l, l.Abbrev(), ab)
		}
		got, ok := LevelByAbbrev(ab)
		if !ok || got != l {
			t.Errorf("LevelByAbbrev(%q) = %v,%v", ab, got, ok)
		}
		byName, ok := LevelByName(l.String())
		if !ok || byName != l {
			t.Errorf("LevelByName(%q) failed", l.String())
		}
		if l.Description() == "" || l.Description() == "unknown" {
			t.Errorf("%s missing description", l)
		}
	}
	// Case sensitivity: n is node, N is NUMA.
	if l, _ := LevelByAbbrev("n"); l != LevelMachine {
		t.Error("n must be machine")
	}
	if l, _ := LevelByAbbrev("N"); l != LevelNUMA {
		t.Error("N must be NUMA")
	}
	if _, ok := LevelByAbbrev("x"); ok {
		t.Error("x must be unknown")
	}
	if Level(-1).Valid() || Level(NumLevels).Valid() {
		t.Error("Valid wrong")
	}
	if Level(-1).Abbrev() != "?" || Level(-1).Description() != "unknown" {
		t.Error("invalid level rendering")
	}
}

func TestSpecValidateAndCounts(t *testing.T) {
	sp := Spec{Boards: 1, Sockets: 2, NUMAs: 1, L3s: 1, L2s: 4, L1s: 1, Cores: 1, PUs: 2}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.TotalPUs() != 16 || sp.TotalCores() != 8 {
		t.Fatalf("TotalPUs=%d TotalCores=%d", sp.TotalPUs(), sp.TotalCores())
	}
	bad := sp
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Fatal("zero width must fail validation")
	}
	if sp.String() == "" {
		t.Fatal("empty spec string")
	}
}

func TestNewTopologyShape(t *testing.T) {
	topo := nehalem(t)
	wantCounts := map[Level]int{
		LevelMachine: 1, LevelBoard: 1, LevelSocket: 2, LevelNUMA: 2,
		LevelL3: 2, LevelL2: 8, LevelL1: 8, LevelCore: 8, LevelPU: 16,
	}
	for l, n := range wantCounts {
		if got := topo.NumObjects(l); got != n {
			t.Errorf("NumObjects(%s) = %d, want %d", l, got, n)
		}
	}
	if topo.NumPUs() != 16 || topo.NumUsablePUs() != 16 {
		t.Fatal("PU counts wrong")
	}
	// Logical indices are dense per level.
	for _, l := range Levels {
		for i, o := range topo.Objects(l) {
			if o.Logical != i {
				t.Fatalf("%s logical %d at position %d", l, o.Logical, i)
			}
			if o.Level != l {
				t.Fatalf("level mismatch")
			}
		}
	}
	// Parent/child integrity and ranks.
	for _, l := range Levels[1:] {
		for _, o := range topo.Objects(l) {
			if o.Parent == nil {
				t.Fatalf("%v has no parent", o)
			}
			if o.Parent.Children[o.Rank] != o {
				t.Fatalf("%v rank inconsistent", o)
			}
		}
	}
}

func TestThreadMajorOSNumbering(t *testing.T) {
	topo := nehalem(t) // ThreadMajorOS: true, 8 cores, 2 threads
	core0 := topo.ObjectAt(LevelCore, 0)
	got := core0.PUSet().String()
	if got != "0,8" {
		t.Fatalf("core0 PUs = %q, want \"0,8\"", got)
	}
	seq := New(Spec{Boards: 1, Sockets: 2, NUMAs: 1, L3s: 1, L2s: 4, L1s: 1, Cores: 1, PUs: 2})
	if got := seq.ObjectAt(LevelCore, 0).PUSet().String(); got != "0-1" {
		t.Fatalf("sequential core0 PUs = %q, want \"0-1\"", got)
	}
	// All OS indices distinct and dense in both numberings.
	for _, tp := range []*Topology{topo, seq} {
		seen := NewCPUSet()
		for _, pu := range tp.Objects(LevelPU) {
			if seen.Contains(pu.OS) {
				t.Fatalf("duplicate OS index %d", pu.OS)
			}
			seen.Set(pu.OS)
		}
		if !seen.Equal(CPUSetRange(0, tp.NumPUs()-1)) {
			t.Fatalf("OS indices not dense: %v", seen)
		}
	}
}

func TestObjectQueries(t *testing.T) {
	topo := nehalem(t)
	pu := topo.PUByOS(9) // thread-major: core 1, second thread
	if pu == nil {
		t.Fatal("PUByOS failed")
	}
	if pu.Ancestor(LevelCore).Logical != 1 {
		t.Fatalf("PU 9 core = %v", pu.Ancestor(LevelCore))
	}
	if pu.Ancestor(LevelSocket).Logical != 0 {
		t.Fatalf("PU 9 socket = %v", pu.Ancestor(LevelSocket))
	}
	if pu.Ancestor(LevelMachine) != topo.Root {
		t.Fatal("machine ancestor")
	}
	if topo.Root.Ancestor(LevelCore) != nil {
		t.Fatal("descending Ancestor should be nil")
	}
	if topo.ObjectAt(LevelSocket, 5) != nil || topo.ObjectAt(LevelSocket, -1) != nil {
		t.Fatal("out-of-range ObjectAt")
	}
	if topo.PUByOS(99) != nil {
		t.Fatal("unknown OS index")
	}
	if s := topo.ObjectAt(LevelSocket, 1).String(); s != "socket#1" {
		t.Fatalf("String = %q", s)
	}
	var nilObj *Object
	if nilObj.String() != "<nil>" {
		t.Fatal("nil object String")
	}
}

func TestCommonAncestorLevel(t *testing.T) {
	topo := nehalem(t) // thread-major: PUs k and k+8 share a core
	cases := []struct {
		a, b int
		want Level
	}{
		{0, 0, LevelPU},
		{0, 8, LevelCore},  // same core, two threads
		{0, 1, LevelL3},    // neighbor cores share L3 (L2/L1 private)
		{0, 4, LevelBoard}, // different sockets: LCA is the board
		{0, 99, LevelMachine},
	}
	for _, c := range cases {
		if got := topo.CommonAncestorLevel(c.a, c.b); got != c.want {
			t.Errorf("LCA(%d,%d) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestAvailabilityAndRestrict(t *testing.T) {
	topo := nehalem(t)
	// Off-line socket 1: 8 PUs become unusable.
	if !topo.SetAvailable(LevelSocket, 1, false) {
		t.Fatal("SetAvailable failed")
	}
	if topo.NumUsablePUs() != 8 {
		t.Fatalf("usable = %d, want 8", topo.NumUsablePUs())
	}
	if topo.SetAvailable(LevelSocket, 7, false) {
		t.Fatal("SetAvailable on missing object should be false")
	}
	pu := topo.PUByOS(4) // socket 1 territory
	if pu.Usable() {
		t.Fatal("PU under offline socket must be unusable")
	}
	if got := pu.UsablePUs(); got != nil {
		t.Fatal("UsablePUs under offline ancestor must be empty")
	}
	topo.SetAvailable(LevelSocket, 1, true)

	// Scheduler restriction to PUs 0-5.
	topo.Restrict(CPUSetRange(0, 5))
	if topo.NumUsablePUs() != 6 {
		t.Fatalf("after restrict usable = %d", topo.NumUsablePUs())
	}
	if got := topo.AllowedSet().String(); got != "0-5" {
		t.Fatalf("AllowedSet = %q", got)
	}
}

func TestRemoveObjectIrregular(t *testing.T) {
	topo := nehalem(t)
	if !topo.RemoveObject(LevelCore, 3) {
		t.Fatal("RemoveObject failed")
	}
	if topo.NumObjects(LevelCore) != 7 || topo.NumPUs() != 14 {
		t.Fatalf("after removal: cores=%d pus=%d", topo.NumObjects(LevelCore), topo.NumPUs())
	}
	// Logical renumbering is dense again.
	for i, c := range topo.Objects(LevelCore) {
		if c.Logical != i {
			t.Fatalf("core logical %d at %d", c.Logical, i)
		}
	}
	// MaxChildren reflects irregularity: some L1 has 1 core, all do... here
	// each L1 had exactly 1 core, so one L1 now has 0.
	if got := topo.MaxChildren(LevelL1); got != 1 {
		t.Fatalf("MaxChildren(L1) = %d", got)
	}
	if topo.RemoveObject(LevelMachine, 0) {
		t.Fatal("must not remove root")
	}
	if topo.RemoveObject(LevelCore, 99) {
		t.Fatal("must not remove missing object")
	}
}

func TestClone(t *testing.T) {
	topo := nehalem(t)
	topo.SetAvailable(LevelCore, 2, false)
	c := topo.Clone()
	if c.NumPUs() != topo.NumPUs() || c.NumUsablePUs() != topo.NumUsablePUs() {
		t.Fatal("clone shape mismatch")
	}
	// Mutating the clone must not affect the original.
	c.SetAvailable(LevelSocket, 0, false)
	if topo.ObjectAt(LevelSocket, 0).Available == false {
		t.Fatal("clone aliases original")
	}
	if topo.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	topo := nehalem(t)
	topo.SetAvailable(LevelCore, 5, false)
	data, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumPUs() != topo.NumPUs() || back.NumUsablePUs() != topo.NumUsablePUs() {
		t.Fatalf("round trip: pus %d/%d usable %d/%d",
			back.NumPUs(), topo.NumPUs(), back.NumUsablePUs(), topo.NumUsablePUs())
	}
	for _, l := range Levels {
		if back.NumObjects(l) != topo.NumObjects(l) {
			t.Fatalf("level %s count mismatch", l)
		}
	}
	// OS indices preserved.
	for i, pu := range topo.Objects(LevelPU) {
		if back.Objects(LevelPU)[i].OS != pu.OS {
			t.Fatal("OS index lost")
		}
	}
}

func TestJSONErrors(t *testing.T) {
	var tp Topology
	for _, bad := range []string{
		`{"level":"sprocket"}`,
		`{"level":"core"}`,
		`{"level":"machine","children":[{"level":"machine"}]}`,
		`{"level":"machine","children":[{"level":"pu","children":[{"level":"pu"}]}]}`,
		`{`,
	} {
		if err := json.Unmarshal([]byte(bad), &tp); err == nil {
			t.Errorf("decoding %q should fail", bad)
		}
	}
}

func TestParseSpecForms(t *testing.T) {
	sp, err := ParseSpec("nehalem-ep")
	if err != nil || sp.Sockets != 2 {
		t.Fatalf("preset parse: %v %+v", err, sp)
	}
	sp, err = ParseSpec("2:4:2")
	if err != nil || sp.Sockets != 2 || sp.Cores != 4 || sp.PUs != 2 || sp.Boards != 1 {
		t.Fatalf("short parse: %v %+v", err, sp)
	}
	sp, err = ParseSpec("2:2:1:1:4:1:1:2")
	if err != nil || sp.Boards != 2 || sp.L2s != 4 {
		t.Fatalf("full parse: %v %+v", err, sp)
	}
	if got := FormatSpec(sp); got != "2:2:1:1:4:1:1:2" {
		t.Fatalf("FormatSpec = %q", got)
	}
	for _, bad := range []string{"", "1:2", "a:b:c", "0:1:1", "1:2:3:4"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
	if len(PresetNames()) < 5 {
		t.Fatal("expected several presets")
	}
	for _, name := range PresetNames() {
		sp, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q vanished", name)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
}

// randomSpec produces a small random valid spec.
func randomSpec(r *rand.Rand) Spec {
	w := func(max int) int { return 1 + r.Intn(max) }
	return Spec{
		Boards: w(2), Sockets: w(4), NUMAs: w(2), L3s: w(2),
		L2s: w(3), L1s: w(2), Cores: w(3), PUs: w(4),
		ThreadMajorOS: r.Intn(2) == 1,
	}
}

func TestQuickTopologyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sp := randomSpec(r)
		topo := New(sp)
		// PU count matches spec product.
		if topo.NumPUs() != sp.TotalPUs() {
			return false
		}
		// Level counts multiply down the tree.
		w := sp.widths()
		want := 1
		for d := 0; d < NumLevels; d++ {
			want *= w[d]
			if topo.NumObjects(Level(d)) != want {
				return false
			}
		}
		// Every PU OS index unique and in range; PUSet of root is full.
		if !topo.Root.PUSet().Equal(CPUSetRange(0, topo.NumPUs()-1)) {
			return false
		}
		// JSON round trip preserves shape.
		data, err := json.Marshal(topo)
		if err != nil {
			return false
		}
		var back Topology
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.NumPUs() == topo.NumPUs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickRestrictMonotone(t *testing.T) {
	// Restricting can only shrink the usable set, and AllowedSet is always
	// a subset of the restriction mask.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		topo := New(randomSpec(r))
		before := topo.NumUsablePUs()
		mask := randomSet(r, topo.NumPUs())
		topo.Restrict(mask)
		after := topo.NumUsablePUs()
		return after <= before && topo.AllowedSet().IsSubset(mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRenderTree(t *testing.T) {
	topo := nehalem(t)
	topo.SetAvailable(LevelCore, 1, false)
	out := topo.RenderTree()
	for _, want := range []string{"machine#0", "socket#1", "core#0 (pus 0,8)", "core#1", "[offline]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderTree missing %q:\n%s", want, out)
		}
	}
	// Restricted PUs show a usable subset.
	topo2 := nehalem(t)
	topo2.Restrict(CPUSetRange(0, 7))
	out2 := topo2.RenderTree()
	if !strings.Contains(out2, "[usable") {
		t.Fatalf("restricted render:\n%s", out2)
	}
}
