package orte

import (
	"strings"
	"testing"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func monitoredSetup(t *testing.T, nodes, np int) (*Runtime, *core.Map, *bind.Plan) {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(nodes, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bind.Compute(c, m, bind.Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(c), m, plan
}

func TestMonitoredNoFailures(t *testing.T) {
	rt, m, plan := monitoredSetup(t, 2, 24)
	job, rep, err := rt.LaunchMonitored(m, plan, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstFailure != nil {
		t.Fatal("no failure expected")
	}
	for _, o := range rep.Outcomes {
		if o.State != Done || o.Steps != 20 {
			t.Fatalf("outcome = %+v", o)
		}
	}
	if err := job.CheckEnforcement(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitoredFailurePropagation(t *testing.T) {
	// 24 ranks on 2 nodes, csbnh: ranks 0-5,12-17 on node0; 6-11,18-23 on
	// node1. Kill rank 0 at step 5.
	rt, m, plan := monitoredSetup(t, 2, 24)
	job, rep, err := rt.LaunchMonitored(m, plan, 50, []Failure{{Rank: 0, Step: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstFailure == nil || rep.FirstFailure.Rank != 0 {
		t.Fatalf("first failure = %+v", rep.FirstFailure)
	}
	if rep.DetectionSteps < 2 {
		t.Fatalf("detection = %d", rep.DetectionSteps)
	}
	var failed, killedLocal, killedRemote int
	for _, o := range rep.Outcomes {
		p := job.Procs[o.Rank]
		switch o.State {
		case Failed:
			failed++
			if o.Steps != 5 {
				t.Fatalf("failed rank ran %d steps", o.Steps)
			}
		case Killed:
			if p.Node == 0 {
				killedLocal++
				if o.Steps != 6 {
					t.Fatalf("local kill at step %d, want 6", o.Steps)
				}
			} else {
				killedRemote++
				if o.Steps != 5+rep.DetectionSteps {
					t.Fatalf("remote kill at step %d, want %d", o.Steps, 5+rep.DetectionSteps)
				}
			}
		case Done:
			t.Fatalf("rank %d finished despite abort", o.Rank)
		}
		if len(p.History) != o.Steps {
			t.Fatalf("history not truncated: %d vs %d", len(p.History), o.Steps)
		}
	}
	if failed != 1 || killedLocal != 11 || killedRemote != 12 {
		t.Fatalf("failed=%d local=%d remote=%d", failed, killedLocal, killedRemote)
	}
}

func TestMonitoredLateFailureLetsOthersFinish(t *testing.T) {
	rt, m, plan := monitoredSetup(t, 2, 4)
	_, rep, err := rt.LaunchMonitored(m, plan, 10, []Failure{{Rank: 0, Step: 9}})
	if err != nil {
		t.Fatal(err)
	}
	// The abort reaches others at/after step 10, so they complete.
	for _, o := range rep.Outcomes {
		if o.Rank == 0 {
			if o.State != Failed {
				t.Fatal("rank 0 should fail")
			}
			continue
		}
		if o.State != Done || o.Steps != 10 {
			t.Fatalf("outcome = %+v", o)
		}
	}
}

func TestMonitoredMultipleFailuresEarliestWins(t *testing.T) {
	rt, m, plan := monitoredSetup(t, 2, 8)
	_, rep, err := rt.LaunchMonitored(m, plan, 50, []Failure{
		{Rank: 3, Step: 20}, {Rank: 1, Step: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstFailure.Rank != 1 || rep.FirstFailure.Step != 4 {
		t.Fatalf("first = %+v", rep.FirstFailure)
	}
	// Both injected ranks are reported failed.
	if rep.Outcomes[1].State != Failed || rep.Outcomes[3].State != Failed {
		t.Fatal("injected ranks must be Failed")
	}
}

func TestMonitoredErrors(t *testing.T) {
	rt, m, plan := monitoredSetup(t, 1, 4)
	if _, _, err := rt.LaunchMonitored(m, plan, 10, []Failure{{Rank: 9, Step: 1}}); err == nil {
		t.Fatal("unknown rank")
	}
	if _, _, err := rt.LaunchMonitored(m, plan, 10, []Failure{{Rank: 0, Step: 10}}); err == nil {
		t.Fatal("step out of range")
	}
	if _, _, err := rt.LaunchMonitored(m, plan, 10, []Failure{{Rank: 0, Step: -1}}); err == nil {
		t.Fatal("negative step")
	}
}

func TestProcStateStrings(t *testing.T) {
	if Done.String() != "done" || Failed.String() != "failed" || Killed.String() != "killed" {
		t.Fatal("names")
	}
	if !strings.HasPrefix(ProcState(7).String(), "state(") {
		t.Fatal("unknown")
	}
}
