package orte

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLinearSpawn(t *testing.T) {
	s, err := SimulateSpawn(100, LinearSpawn, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 100 || s.Messages != 100 || s.TimeUs != 5000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBinomialSpawn(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 7: 3, 8: 4, 15: 4, 1023: 10, 1024: 11}
	for n, rounds := range cases {
		s, err := SimulateSpawn(n, BinomialSpawn, 50)
		if err != nil {
			t.Fatal(err)
		}
		if s.Rounds != rounds {
			t.Errorf("n=%d rounds = %d, want %d", n, s.Rounds, rounds)
		}
		if s.Messages != n {
			t.Errorf("n=%d messages = %d", n, s.Messages)
		}
	}
}

func TestSpawnErrors(t *testing.T) {
	if _, err := SimulateSpawn(0, LinearSpawn, 1); err == nil {
		t.Fatal("n=0")
	}
	if _, err := SimulateSpawn(1, LinearSpawn, 0); err == nil {
		t.Fatal("latency=0")
	}
	if _, err := SimulateSpawn(1, SpawnProtocol(9), 1); err == nil {
		t.Fatal("unknown protocol")
	}
}

func TestSpawnProtocolStrings(t *testing.T) {
	if LinearSpawn.String() != "linear" || BinomialSpawn.String() != "binomial" {
		t.Fatal("names")
	}
	if !strings.HasPrefix(SpawnProtocol(9).String(), "protocol(") {
		t.Fatal("unknown name")
	}
}

func TestQuickBinomialNeverSlower(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw%4096) + 1
		lin, err1 := SimulateSpawn(n, LinearSpawn, 10)
		bin, err2 := SimulateSpawn(n, BinomialSpawn, 10)
		if err1 != nil || err2 != nil {
			return false
		}
		return bin.Rounds <= lin.Rounds && bin.Messages == lin.Messages
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
