package orte

import (
	"reflect"
	"testing"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func TestInjectionPlanNormalize(t *testing.T) {
	p := InjectionPlan{
		Failures: []Failure{
			{Rank: 5, Step: 3}, {Rank: 2, Step: 3}, {Rank: 1, Step: 0},
			{Rank: 2, Step: 3}, // duplicate
		},
		NodeFailures: []NodeFailure{
			{Node: 1, Step: 4}, {Node: 0, Step: 4}, {Node: 1, Step: 4},
		},
	}
	p.Normalize()
	wantF := []Failure{{Rank: 1, Step: 0}, {Rank: 2, Step: 3}, {Rank: 5, Step: 3}}
	if !reflect.DeepEqual(p.Failures, wantF) {
		t.Fatalf("failures = %+v", p.Failures)
	}
	wantN := []NodeFailure{{Node: 0, Step: 4}, {Node: 1, Step: 4}}
	if !reflect.DeepEqual(p.NodeFailures, wantN) {
		t.Fatalf("node failures = %+v", p.NodeFailures)
	}
	if p.Empty() {
		t.Fatal("plan is not empty")
	}
	var empty InjectionPlan
	if !empty.Empty() {
		t.Fatal("zero plan should be empty")
	}
}

func TestCrashAtStep(t *testing.T) {
	fs := CrashAtStep(7, 3, 1)
	want := []Failure{{Rank: 3, Step: 7}, {Rank: 1, Step: 7}}
	if !reflect.DeepEqual(fs, want) {
		t.Fatalf("got %+v", fs)
	}
}

func TestMTBFScheduleDeterministic(t *testing.T) {
	a, err := MTBFSchedule(42, 16, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MTBFSchedule(42, 16, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give the same schedule")
	}
	if len(a) == 0 {
		t.Fatal("mtbf 50 over 100 steps should produce some failures")
	}
	for i, f := range a {
		if f.Step < 0 || f.Step >= 100 || f.Rank < 0 || f.Rank >= 16 {
			t.Fatalf("failure out of range: %+v", f)
		}
		if i > 0 && (a[i-1].Step > f.Step || (a[i-1].Step == f.Step && a[i-1].Rank >= f.Rank)) {
			t.Fatalf("not sorted by (step, rank): %+v", a)
		}
	}
	c, err := MTBFSchedule(43, 16, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should (here) give different schedules")
	}
	// A huge MTBF yields few-to-no failures; errors on bad inputs.
	if _, err := MTBFSchedule(1, 0, 10, 5); err == nil {
		t.Fatal("zero ranks")
	}
	if _, err := MTBFSchedule(1, 4, 0, 5); err == nil {
		t.Fatal("zero steps")
	}
	if _, err := MTBFSchedule(1, 4, 10, 0); err == nil {
		t.Fatal("zero mtbf")
	}
}

func TestCorrelatedNodeLoss(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(12)
	if err != nil {
		t.Fatal(err)
	}
	fs := CorrelatedNodeLoss(m, 0, 5)
	if len(fs) != 6 {
		t.Fatalf("expected 6 ranks on node 0, got %d", len(fs))
	}
	for _, f := range fs {
		if f.Step != 5 || m.Placements[f.Rank].Node != 0 {
			t.Fatalf("bad expansion: %+v", f)
		}
	}
}

func TestRandomNodeLoss(t *testing.T) {
	a, err := RandomNodeLoss(7, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomNodeLoss(7, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed must give the same loss")
	}
	if a.Node < 0 || a.Node >= 4 || a.Step < 0 || a.Step >= 50 {
		t.Fatalf("out of range: %+v", a)
	}
	if _, err := RandomNodeLoss(1, 0, 5); err == nil {
		t.Fatal("zero nodes")
	}
}

// Regression (determinism): several failures injected at the same step
// must produce an identical report regardless of declaration order.
func TestMonitorSameStepFailuresDeterministic(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	run := func(failures []Failure) *MonitorReport {
		c := cluster.Homogeneous(2, sp)
		mapper, err := core.NewMapper(c, core.MustParseLayout("csbnh"), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapper.Map(12)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := bind.Compute(c, m, bind.Specific, hw.LevelPU)
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := NewRuntime(c).LaunchMonitored(m, plan, 30, failures)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Rank 7 lives on node 1, rank 2 on node 0: the tie-break decides
	// which node counts as the failure's origin (local vs remote kill).
	a := run([]Failure{{Rank: 7, Step: 4}, {Rank: 2, Step: 4}})
	b := run([]Failure{{Rank: 2, Step: 4}, {Rank: 7, Step: 4}})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-step failures are order-sensitive:\n%+v\n%+v", a, b)
	}
	if a.FirstFailure == nil || *a.FirstFailure != (Failure{Rank: 2, Step: 4}) {
		t.Fatalf("first failure = %+v, want lowest rank at the step", a.FirstFailure)
	}
}
