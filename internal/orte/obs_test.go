package orte

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
	"lama/internal/rm"
)

// decodeTrace parses a JSONL trace buffer into "src/event@step" strings
// ("src/event" for stepless events), preserving emission order.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	var seq []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		s := fmt.Sprintf("%v/%v", e["src"], e["event"])
		if step, ok := e["step"]; ok {
			s += fmt.Sprintf("@%v", step)
		}
		seq = append(seq, s)
	}
	return seq
}

// TestSupervisorEventSequences pins the exact ordered event stream each
// recovery path writes to the trace: the pipeline order
// detect -> realloc -> remap -> respawn is part of the observable contract,
// not an implementation accident. Detection windows are fixed explicitly so
// every step stamp is deterministic.
func TestSupervisorEventSequences(t *testing.T) {
	cases := []struct {
		name string
		// build returns a configured supervisor (with o already in its
		// Opts) plus the np/steps/plan to run.
		build func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan)
		want  []string
	}{
		{
			// A lone rank crash under FTRespawn: no node died, so there is
			// no realloc step — detection flows straight into remap.
			name: "respawn-rank-crash",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTRespawn)
				s.Config.DetectionWindow = 2
				s.Opts.Obs = o
				return s, 8, 10, InjectionPlan{Failures: CrashAtStep(2, 1)}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/failure@2",
				"supervise/heartbeat-miss@2",
				"supervise/heartbeat-miss@3",
				"supervise/detect@4",
				"map/done", // RemapSurvivors re-runs the LAMA under the hood
				"supervise/remap@4",
				"supervise/respawn@4",
				"supervise/done",
			},
		},
		{
			// Full pipeline: node loss -> heartbeat window -> detect ->
			// spare re-allocation -> locality-preserving remap -> respawn.
			name: "respawn-node-failure-with-spare",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				sp, _ := hw.Preset("fig2")
				pool := cluster.Homogeneous(3, sp)
				mgr := rm.NewManager(pool)
				alloc, err := mgr.AllocWithSpares(rm.WholeNode, 12, 1)
				if err != nil {
					t.Fatal(err)
				}
				s := &Supervisor{
					Runtime:    NewRuntime(alloc.Granted),
					Layout:     core.MustParseLayout("csbnh"),
					BindPolicy: bind.Specific,
					BindLevel:  hw.LevelPU,
					Config:     SuperviseConfig{Policy: FTRespawn, MaxRestarts: 1, DetectionWindow: 2},
				}
				s.Opts.Obs = o
				s.SpareProvider = func(failedNode int) (int, error) {
					name := alloc.Granted.Nodes[failedNode].Name
					res, err := mgr.Realloc(alloc, name,
						rm.RetryConfig{MaxAttempts: 2, BaseBackoff: time.Microsecond, Obs: o})
					if err != nil {
						return -1, err
					}
					return res.GrantedIndex, nil
				}
				return s, 12, 20, InjectionPlan{NodeFailures: []NodeFailure{{Node: 0, Step: 3}}}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/node-failure@3",
				"supervise/heartbeat-miss@3",
				"supervise/heartbeat-miss@4",
				"supervise/detect@5",
				"supervise/realloc@5",
				"map/done", // RemapSurvivors re-runs the LAMA under the hood
				"supervise/remap@5",
				"supervise/respawn@5",
				"supervise/done",
			},
		},
		{
			// Node loss with an exhausted pool: the resource manager's
			// bounded retry surfaces as rm/realloc-retry before the abort.
			name: "realloc-retry-then-abort",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				sp, _ := hw.Preset("fig2")
				pool := cluster.Homogeneous(2, sp)
				mgr := rm.NewManager(pool)
				alloc, err := mgr.Alloc(rm.WholeNode, 12)
				if err != nil {
					t.Fatal(err)
				}
				s := &Supervisor{
					Runtime:    NewRuntime(alloc.Granted),
					Layout:     core.MustParseLayout("csbnh"),
					BindPolicy: bind.Specific,
					BindLevel:  hw.LevelPU,
					Config:     SuperviseConfig{Policy: FTRespawn, MaxRestarts: -1, DetectionWindow: 1},
				}
				s.Opts.Obs = o
				s.SpareProvider = func(failedNode int) (int, error) {
					name := alloc.Granted.Nodes[failedNode].Name
					res, err := mgr.Realloc(alloc, name, rm.RetryConfig{
						MaxAttempts: 3, BaseBackoff: time.Microsecond,
						Sleep: func(time.Duration) {}, Obs: o,
					})
					if err != nil {
						return -1, err
					}
					return res.GrantedIndex, nil
				}
				return s, 12, 20, InjectionPlan{NodeFailures: []NodeFailure{{Node: 0, Step: 3}}}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/node-failure@3",
				"supervise/heartbeat-miss@3",
				"supervise/detect@4",
				"rm/realloc-retry",
				"rm/realloc-retry",
				"rm/realloc-exhausted", // the give-up itself is traced
				"supervise/abort@4",
				"supervise/done",
			},
		},
		{
			name: "shrink",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTShrink)
				s.Config.DetectionWindow = 1
				s.Opts.Obs = o
				return s, 12, 20, InjectionPlan{Failures: CrashAtStep(4, 3)}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/failure@4",
				"supervise/heartbeat-miss@4",
				"supervise/detect@5",
				"supervise/shrink@5",
				"supervise/done",
			},
		},
		{
			// An elastic grow: ExpandMap runs the LAMA for the new ranks
			// (its own map/done) before the supervisor commits the resize.
			name: "elastic-grow",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTRespawn)
				s.Opts.Obs = o
				return s, 8, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 3, Delta: 4}}}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"map/done", // ExpandMap maps the new ranks incrementally
				"supervise/grow@3",
				"supervise/done",
			},
		},
		{
			// An elastic release runs no mapper — survivors keep their
			// placements, so the shrink event stands alone.
			name: "elastic-release",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTRespawn)
				s.Opts.Obs = o
				return s, 12, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 3, Delta: -4}}}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/shrink@3",
				"supervise/done",
			},
		},
		{
			// A grow beyond cluster capacity is rejected, traced, and the
			// job keeps running at its old size.
			name: "elastic-grow-rejected",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTRespawn)
				s.Opts.Obs = o
				// 24 ranks fill both fig2 nodes; +4 cannot be placed.
				return s, 24, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 3, Delta: 4}}}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"map/stall",        // the incremental mapper runs out of resources
				"supervise/grow@3", // carries ok=false and the reject reason
				"supervise/done",
			},
		},
		{
			// Restart budget already spent: detection aborts instead of
			// respawning, and the run still closes with its done event.
			name: "budget-exhausted-abort",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTRespawn)
				s.Config.MaxRestarts = 0
				s.Config.DetectionWindow = 1
				s.Opts.Obs = o
				return s, 12, 20, InjectionPlan{Failures: CrashAtStep(2, 1)}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/failure@2",
				"supervise/heartbeat-miss@2",
				"supervise/detect@3",
				"supervise/abort@3",
				"supervise/done",
			},
		},
		{
			// FTAbort delegates to the seed's monitored launch; the trace
			// still records detection before the kill.
			name: "abort-policy",
			build: func(t *testing.T, o *obs.Observer) (*Supervisor, int, int, InjectionPlan) {
				s := supervisor(t, 2, FTAbort)
				s.Opts.Obs = o
				return s, 12, 30, InjectionPlan{Failures: CrashAtStep(5, 2)}
			},
			want: []string{
				"map/done", // the supervisor's initial placement is traced too
				"supervise/start",
				"supervise/detect",
				"supervise/abort",
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			o := &obs.Observer{Sink: obs.NewJSONLSink(&buf), Metrics: obs.NewRegistry()}
			s, np, steps, plan := tc.build(t, o)
			if _, err := s.Run(np, steps, plan); err != nil {
				t.Fatal(err)
			}
			if err := o.Close(); err != nil {
				t.Fatal(err)
			}
			got := decodeTrace(t, &buf)
			// The abort cases carry step stamps too, but FTAbort's come
			// from the monitor's routed-tree detection delay; drop their
			// stamps rather than encode that model here.
			if tc.name == "abort-policy" {
				for i, s := range got {
					if at := strings.IndexByte(s, '@'); at >= 0 {
						got[i] = s[:at]
					}
				}
			}
			if !equalSeq(got, tc.want) {
				t.Fatalf("event sequence:\n got %v\nwant %v", got, tc.want)
			}
		})
	}
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSupervisorRecoveryMetrics checks the registry side of a respawn run:
// the failure/restart counters and the recovery histograms fill in.
func TestSupervisorRecoveryMetrics(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	s := supervisor(t, 2, FTRespawn)
	s.Config.DetectionWindow = 2
	s.Opts.Obs = o
	rep, err := s.Run(8, 10, InjectionPlan{Failures: CrashAtStep(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Restarts != 1 {
		t.Fatalf("report = %+v", rep)
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["lama_failures_detected_total"]; got != 1 {
		t.Errorf("failures_detected = %d", got)
	}
	if got := snap.Counters["lama_restarts_total"]; got != 1 {
		t.Errorf("restarts = %d", got)
	}
	if got := snap.Counters["lama_replay_steps_total"]; got != int64(rep.ReplaySteps) {
		t.Errorf("replay_steps counter = %d, want %d", got, rep.ReplaySteps)
	}
	for _, h := range []string{"lama_remap_duration_us", "lama_recovery_replay_steps"} {
		hist, ok := snap.Histograms[h]
		if !ok || hist.Count != 1 {
			t.Errorf("histogram %s missing or empty: %+v", h, hist)
		}
	}
}
