package orte

import (
	"testing"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

func setup(t *testing.T, layout string, np int, policy bind.Policy, level hw.Level) (*cluster.Cluster, *core.Map, *bind.Plan) {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(2, sp)
	mapper, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(np)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bind.Compute(c, m, policy, level)
	if err != nil {
		t.Fatal(err)
	}
	return c, m, plan
}

func TestLaunchSpecificPUNoMigration(t *testing.T) {
	c, m, plan := setup(t, "scbnh", 24, bind.Specific, hw.LevelPU)
	job, err := NewRuntime(c).Launch(m, plan, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.CheckEnforcement(); err != nil {
		t.Fatal(err)
	}
	for _, p := range job.Procs {
		if p.Migrations() != 0 || p.DistinctPUs() != 1 {
			t.Fatalf("rank %d migrated under PU binding (%d migrations)",
				p.Rank, p.Migrations())
		}
		if len(p.History) != 50 {
			t.Fatalf("rank %d ran %d steps", p.Rank, len(p.History))
		}
	}
	if occ := job.MaxOccupancy(); occ != 1 {
		t.Fatalf("occupancy = %d, want 1", occ)
	}
	// One daemon per node, covering all ranks.
	if len(job.Daemons) != 2 {
		t.Fatalf("daemons = %d", len(job.Daemons))
	}
	total := 0
	for _, d := range job.Daemons {
		total += len(d.Ranks)
	}
	if total != 24 {
		t.Fatalf("daemon ranks = %d", total)
	}
}

func TestLaunchSocketBindingMigratesWithinSocket(t *testing.T) {
	c, m, plan := setup(t, "scbnh", 4, bind.Specific, hw.LevelSocket)
	job, err := NewRuntime(c).Launch(m, plan, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.CheckEnforcement(); err != nil {
		t.Fatal(err)
	}
	for _, p := range job.Procs {
		if p.Migrations() == 0 {
			t.Fatalf("rank %d never migrated within its 6-PU socket", p.Rank)
		}
		if p.DistinctPUs() != 6 {
			t.Fatalf("rank %d touched %d PUs, want 6", p.Rank, p.DistinctPUs())
		}
	}
}

func TestLaunchUnboundRoamsNode(t *testing.T) {
	c, m, plan := setup(t, "scbnh", 2, bind.None, hw.LevelCore)
	job, err := NewRuntime(c).Launch(m, plan, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range job.Procs {
		if p.DistinctPUs() != 12 {
			t.Fatalf("unbound rank %d touched %d PUs, want all 12", p.Rank, p.DistinctPUs())
		}
	}
	// Nil plan behaves like unbound too.
	job2, err := NewRuntime(c).Launch(m, nil, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := job2.CheckEnforcement(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchOversubscribedOccupancy(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(1, sp)
	mapper, _ := core.NewMapper(c, core.MustParseLayout("scbnh"), core.Options{Oversubscribe: true})
	m, err := mapper.Map(24) // 24 ranks on 12 PUs
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bind.Compute(c, m, bind.Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewRuntime(c).Launch(m, plan, 10)
	if err != nil {
		t.Fatal(err)
	}
	if occ := job.MaxOccupancy(); occ != 2 {
		t.Fatalf("occupancy = %d, want 2 (two ranks per PU)", occ)
	}
}

func TestLaunchErrors(t *testing.T) {
	c, m, plan := setup(t, "scbnh", 4, bind.Specific, hw.LevelPU)
	rt := NewRuntime(c)
	if _, err := rt.Launch(nil, plan, 10); err == nil {
		t.Fatal("nil map")
	}
	if _, err := rt.Launch(m, plan, 0); err == nil {
		t.Fatal("zero steps")
	}
	// Plan size mismatch.
	short := &bind.Plan{Policy: plan.Policy, Bindings: plan.Bindings[:2]}
	if _, err := rt.Launch(m, short, 10); err == nil {
		t.Fatal("short plan")
	}
	// Corrupted map.
	bad := *m
	bad.Placements = append([]core.Placement(nil), m.Placements...)
	bad.Placements[0].PUs = []int{77}
	if _, err := rt.Launch(&bad, plan, 10); err == nil {
		t.Fatal("invalid map")
	}
	// Plan that escapes the allowed set (restrict after planning).
	c.Node(0).Topo.Restrict(hw.NewCPUSet(0))
	if _, err := rt.Launch(m, plan, 10); err == nil {
		t.Fatal("unsatisfiable plan")
	}
}

func TestMigrationHelpers(t *testing.T) {
	p := &Process{History: []int{1, 1, 2, 1}}
	if p.Migrations() != 2 || p.DistinctPUs() != 2 {
		t.Fatalf("migrations=%d distinct=%d", p.Migrations(), p.DistinctPUs())
	}
}
