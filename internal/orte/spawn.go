package orte

import "fmt"

// SpawnProtocol selects how the run-time environment contacts the per-node
// daemons when launching a job (paper §III: "parallel run-time
// environments can launch and monitor groups of processes across nodes").
type SpawnProtocol int

const (
	// LinearSpawn has the head node process contact every daemon itself,
	// one after another — simple, O(n) time.
	LinearSpawn SpawnProtocol = iota
	// BinomialSpawn propagates the launch command down a binomial tree of
	// daemons — O(log n) rounds, the scalable routed topology ORTE uses.
	BinomialSpawn
)

// String names the protocol.
func (p SpawnProtocol) String() string {
	switch p {
	case LinearSpawn:
		return "linear"
	case BinomialSpawn:
		return "binomial"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// SpawnStats describes a simulated daemon-spawn wave.
type SpawnStats struct {
	// Nodes is the number of daemons launched.
	Nodes int
	// Rounds is the number of sequential communication steps.
	Rounds int
	// Messages is the total number of launch messages sent.
	Messages int
	// TimeUs is Rounds x the per-message latency.
	TimeUs float64
}

// SimulateSpawn models launching daemons on n nodes with the given
// protocol, assuming a uniform per-message latency (µs). Both protocols
// send exactly n messages; they differ in how many proceed in parallel.
func SimulateSpawn(n int, proto SpawnProtocol, latencyUs float64) (*SpawnStats, error) {
	if n <= 0 {
		return nil, fmt.Errorf("orte: non-positive node count %d", n)
	}
	if latencyUs <= 0 {
		return nil, fmt.Errorf("orte: non-positive latency")
	}
	s := &SpawnStats{Nodes: n, Messages: n}
	switch proto {
	case LinearSpawn:
		s.Rounds = n
	case BinomialSpawn:
		// Round k doubles the number of informed participants (head node
		// plus daemons): after r rounds, 2^r participants.
		informed := 1
		for informed < n+1 {
			informed *= 2
			s.Rounds++
		}
	default:
		return nil, fmt.Errorf("orte: unknown spawn protocol %v", proto)
	}
	s.TimeUs = float64(s.Rounds) * latencyUs
	return s, nil
}
