package orte

import (
	"fmt"
	"sort"

	"lama/internal/bind"
	"lama/internal/core"
)

// ProcState is a launched process's final state.
type ProcState int

const (
	// Done means the process ran all its steps.
	Done ProcState = iota
	// Failed means the process died (injected failure).
	Failed
	// Killed means the run-time terminated the process after detecting
	// another rank's failure.
	Killed
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Killed:
		return "killed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Failure injects the death of a rank at a step (0-based).
type Failure struct {
	Rank int
	Step int
}

// Outcome describes one rank's fate in a monitored run.
type Outcome struct {
	Rank  int
	State ProcState
	// Steps is the number of steps the process actually executed.
	Steps int
}

// MonitorReport is the result of a monitored (fault-injecting) launch.
type MonitorReport struct {
	// Outcomes has one entry per rank, ordered by rank.
	Outcomes []Outcome
	// FirstFailure is the earliest injected failure, or nil.
	FirstFailure *Failure
	// DetectionSteps is how many steps after the first failure the last
	// survivor was terminated (the routed-tree propagation delay).
	DetectionSteps int
}

// LaunchMonitored runs the job like Launch but with fault injection and
// the run-time's monitoring role (paper §III: run-time environments
// "launch and monitor groups of processes"): when a rank dies, its node's
// daemon notices on the next step and the abort propagates to the other
// daemons over the routed tree, after which every surviving process is
// killed. With no failures it behaves like Launch and all ranks are Done.
func (rt *Runtime) LaunchMonitored(m *core.Map, plan *bind.Plan, steps int, failures []Failure) (*Job, *MonitorReport, error) {
	job, err := rt.Launch(m, plan, steps)
	if err != nil {
		return nil, nil, err
	}
	report := &MonitorReport{}
	for _, p := range job.Procs {
		report.Outcomes = append(report.Outcomes, Outcome{Rank: p.Rank, State: Done, Steps: len(p.History)})
	}
	if len(failures) == 0 {
		return job, report, nil
	}

	// Validate and find the first failure. Sorting by (Step, Rank) makes
	// the report deterministic when several failures are injected at the
	// same step, regardless of the order the caller listed them in.
	sorted := append([]Failure(nil), failures...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Step != sorted[j].Step {
			return sorted[i].Step < sorted[j].Step
		}
		return sorted[i].Rank < sorted[j].Rank
	})
	for _, f := range sorted {
		if f.Rank < 0 || f.Rank >= len(job.Procs) {
			return nil, nil, fmt.Errorf("orte: failure for unknown rank %d", f.Rank)
		}
		if f.Step < 0 || f.Step >= steps {
			return nil, nil, fmt.Errorf("orte: failure step %d out of range [0,%d)", f.Step, steps)
		}
	}
	first := sorted[0]
	report.FirstFailure = &first

	// Detection: the local daemon notices one step later; remote daemons
	// learn over the binomial routed tree, one tree round per step.
	spawn, err := SimulateSpawn(maxInt(1, len(job.Daemons)), BinomialSpawn, 1)
	if err != nil {
		return nil, nil, err
	}
	report.DetectionSteps = 1 + spawn.Rounds
	killStepLocal := first.Step + 1
	killStepRemote := first.Step + report.DetectionSteps

	failed := map[int]int{} // rank -> fail step
	for _, f := range sorted {
		if prev, ok := failed[f.Rank]; !ok || f.Step < prev {
			failed[f.Rank] = f.Step
		}
	}
	failNode := job.Procs[first.Rank].Node
	for i := range report.Outcomes {
		o := &report.Outcomes[i]
		p := job.Procs[o.Rank]
		switch {
		case hasFailure(failed, o.Rank):
			o.State = Failed
			o.Steps = minInt(failed[o.Rank], steps)
		case p.Node == failNode:
			o.State = Killed
			o.Steps = minInt(killStepLocal, steps)
		default:
			o.State = Killed
			o.Steps = minInt(killStepRemote, steps)
		}
		// A process that would finish before the abort reaches it is Done.
		if o.State == Killed && o.Steps >= steps {
			o.State = Done
			o.Steps = steps
		}
		p.History = p.History[:o.Steps]
	}
	return job, report, nil
}

func hasFailure(m map[int]int, rank int) bool {
	_, ok := m[rank]
	return ok
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
