package orte

import (
	"reflect"
	"testing"

	"lama/internal/cluster"
	"lama/internal/hw"
)

// TestSupervisorGrow: a mid-run grow adds exactly the new ranks, leaves
// every existing placement untouched, and is accounted in the report.
func TestSupervisorGrow(t *testing.T) {
	s := supervisor(t, 2, FTRespawn)
	rep, err := s.Run(8, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 3, Delta: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Grows != 1 || rep.Shrinks != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Map.NumRanks() != 12 {
		t.Fatalf("final ranks = %d, want 12", rep.Map.NumRanks())
	}
	if len(rep.Events) != 1 {
		t.Fatalf("events = %+v", rep.Events)
	}
	ev := rep.Events[0]
	if ev.Action != "grow" || ev.Delta != 4 || ev.Reason != "" {
		t.Fatalf("event = %+v", ev)
	}
	if !reflect.DeepEqual(ev.Ranks, []int{8, 9, 10, 11}) {
		t.Fatalf("new ranks = %v", ev.Ranks)
	}
	// New processes start at the resize step, not step 0.
	for _, p := range rep.Procs[8:] {
		if p.StartStep != 3 {
			t.Fatalf("new process started at %d, want 3", p.StartStep)
		}
	}
}

// TestSupervisorRelease: a shrink retires the tail ranks, archives their
// processes, and the survivors run to completion.
func TestSupervisorRelease(t *testing.T) {
	s := supervisor(t, 2, FTRespawn)
	rep, err := s.Run(12, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 4, Delta: -5}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Shrinks != 1 || rep.Grows != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Map.NumRanks() != 7 {
		t.Fatalf("final ranks = %d, want 7", rep.Map.NumRanks())
	}
	ev := rep.Events[0]
	if ev.Action != "release" || ev.Delta != -5 {
		t.Fatalf("event = %+v", ev)
	}
	if len(rep.Archived) != 5 {
		t.Fatalf("archived = %d", len(rep.Archived))
	}
	if len(rep.Procs) != 7 {
		t.Fatalf("procs = %d", len(rep.Procs))
	}
}

// TestSupervisorRejectedGrowKeepsRunning: a grow beyond capacity is
// recorded with a reason but the job completes at its old size.
func TestSupervisorRejectedGrowKeepsRunning(t *testing.T) {
	s := supervisor(t, 2, FTRespawn)
	rep, err := s.Run(24, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 3, Delta: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Grows != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Map.NumRanks() != 24 {
		t.Fatalf("final ranks = %d, want 24", rep.Map.NumRanks())
	}
	if ev := rep.Events[0]; ev.Action != "grow" || ev.Reason == "" {
		t.Fatalf("event = %+v", ev)
	}
}

// TestSupervisorGrowThenFailure: the elastic and fault paths compose — a
// grown world survives a later node failure with a respawn.
func TestSupervisorGrowThenFailure(t *testing.T) {
	s := supervisor(t, 2, FTRespawn)
	s.Config.DetectionWindow = 1
	plan := InjectionPlan{
		Resizes:      []ResizeEvent{{Step: 2, Delta: 4}},
		NodeFailures: []NodeFailure{{Node: 0, Step: 5}},
	}
	rep, err := s.Run(8, 20, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Grows != 1 || rep.Restarts == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Map.NumRanks() != 12 {
		t.Fatalf("final ranks = %d, want 12", rep.Map.NumRanks())
	}
	// Nothing may sit on the failed node in the final map.
	for i := range rep.Map.Placements {
		if rep.Map.Placements[i].Node == 0 {
			t.Fatalf("rank %d still on failed node", i)
		}
	}
}

func TestSupervisorResizeValidation(t *testing.T) {
	s := supervisor(t, 2, FTRespawn)
	if _, err := s.Run(8, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: -1, Delta: 2}}}); err == nil {
		t.Fatal("negative resize step accepted")
	}
	s = supervisor(t, 2, FTRespawn)
	if _, err := s.Run(8, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 2, Delta: 0}}}); err == nil {
		t.Fatal("zero resize delta accepted")
	}
	s = supervisor(t, 2, FTAbort)
	if _, err := s.Run(8, 10, InjectionPlan{Resizes: []ResizeEvent{{Step: 2, Delta: 2}}}); err == nil {
		t.Fatal("FTAbort must reject elastic resizes")
	}
}

// TestNodeMTBFScheduleDeterministic: the MTBF-driven failure schedule is a
// pure function of (seed, cluster, horizon) and is sorted by step.
func TestNodeMTBFScheduleDeterministic(t *testing.T) {
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(16, sp)
	c.AttachFaultModel(2, 2, 9)
	a, err := NodeMTBFSchedule(5, c, 1000, 800)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NodeMTBFSchedule(5, c, 1000, 800)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no failures over a horizon beyond the MTBF — suspicious")
	}
	for i, f := range a {
		if f.Step < 0 || f.Step >= 1000 {
			t.Fatalf("failure %d out of horizon: %+v", i, f)
		}
		if f.Node < 0 || f.Node >= 16 {
			t.Fatalf("failure %d names unknown node: %+v", i, f)
		}
		if i > 0 && f.Step < a[i-1].Step {
			t.Fatal("schedule not sorted by step")
		}
	}
	other, err := NodeMTBFSchedule(6, c, 1000, 800)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestNormalizeDedupesResizes: Normalize sorts resizes by step and drops
// exact duplicates.
func TestNormalizeDedupesResizes(t *testing.T) {
	p := InjectionPlan{Resizes: []ResizeEvent{
		{Step: 7, Delta: -2}, {Step: 3, Delta: 4}, {Step: 7, Delta: -2}, {Step: 3, Delta: 4},
	}}
	p.Normalize()
	want := []ResizeEvent{{Step: 3, Delta: 4}, {Step: 7, Delta: -2}}
	if !reflect.DeepEqual(p.Resizes, want) {
		t.Fatalf("normalized = %v", p.Resizes)
	}
	if p.Empty() {
		t.Fatal("plan with resizes reports empty")
	}
}
