package orte

import (
	"reflect"
	"testing"
	"time"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/rm"
)

// supervisor builds a Supervisor over `nodes` fig2 nodes with PU-specific
// binding and the given policy.
func supervisor(t *testing.T, nodes int, policy FTPolicy) *Supervisor {
	t.Helper()
	sp, _ := hw.Preset("fig2")
	c := cluster.Homogeneous(nodes, sp)
	return &Supervisor{
		Runtime:    NewRuntime(c),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     SuperviseConfig{Policy: policy, MaxRestarts: -1},
	}
}

func TestSupervisedNoFailuresMatchesLaunch(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	rep, err := s.Run(12, 20, InjectionPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.FinalRanks != 12 || len(rep.Events) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// The supervised virtual scheduler is step-for-step identical to
	// Launch's.
	job, err := s.Runtime.Launch(rep.Map, rep.Plan, 20)
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range rep.Procs {
		if !reflect.DeepEqual(p.History, job.Procs[r].History) {
			t.Fatalf("rank %d history diverges from Launch", r)
		}
	}
}

func TestAbortPolicyMatchesSeedBitForBit(t *testing.T) {
	s := supervisor(t, 2, FTAbort)
	failures := []Failure{{Rank: 2, Step: 5}}
	rep, err := s.Run(12, 30, InjectionPlan{Failures: failures})
	if err != nil {
		t.Fatal(err)
	}
	// An independent seed-style monitored launch of the same job.
	ref := supervisor(t, 2, FTAbort)
	mapper, _ := core.NewMapper(ref.Runtime.Cluster, ref.Layout, ref.Opts)
	m, err := mapper.Map(12)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bind.Compute(ref.Runtime.Cluster, m, bind.Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	_, mrep, err := ref.Runtime.LaunchMonitored(m, plan, 30, failures)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outcomes, mrep.Outcomes) {
		t.Fatalf("abort outcomes diverge:\n%+v\n%+v", rep.Outcomes, mrep.Outcomes)
	}
	if rep.Monitor == nil || rep.Monitor.DetectionSteps != mrep.DetectionSteps {
		t.Fatal("monitor report missing or diverged")
	}
	if !rep.Aborted || rep.Completed || rep.Restarts != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Events) != 1 || rep.Events[0].Action != "abort" {
		t.Fatalf("events = %+v", rep.Events)
	}
}

func TestAbortNoFailuresCompletes(t *testing.T) {
	s := supervisor(t, 2, FTAbort)
	rep, err := s.Run(8, 10, InjectionPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Aborted || rep.FinalRanks != 8 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestShrinkContinuesWithFewerRanks(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	rep, err := s.Run(12, 20, InjectionPlan{Failures: []Failure{{Rank: 3, Step: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.FinalRanks != 11 || rep.Restarts != 0 {
		t.Fatalf("report: completed=%v final=%d restarts=%d", rep.Completed, rep.FinalRanks, rep.Restarts)
	}
	for _, o := range rep.Outcomes {
		if o.Rank == 3 {
			if o.State != Failed || o.Steps != 4 {
				t.Fatalf("failed rank outcome = %+v", o)
			}
			continue
		}
		if o.State != Done || o.Steps != 20 {
			t.Fatalf("survivor outcome = %+v", o)
		}
	}
	if len(rep.Events) != 1 || rep.Events[0].Action != "shrink" {
		t.Fatalf("events = %+v", rep.Events)
	}
	ev := rep.Events[0]
	if ev.FailStep != 4 || ev.DetectedStep != 4+rep.DetectionWindow {
		t.Fatalf("event timing = %+v (window %d)", ev, rep.DetectionWindow)
	}
}

func TestRespawnNodeFailureWithSpare(t *testing.T) {
	// End-to-end pipeline: rm spare pool -> node loss -> Realloc ->
	// RemapSurvivors -> restart. Pool of 3 fig2 nodes; 2 granted + 1
	// spare; node 0 dies at step 3.
	sp, _ := hw.Preset("fig2")
	pool := cluster.Homogeneous(3, sp)
	mgr := rm.NewManager(pool)
	alloc, err := mgr.AllocWithSpares(rm.WholeNode, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := &Supervisor{
		Runtime:    NewRuntime(alloc.Granted),
		Layout:     core.MustParseLayout("csbnh"),
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config:     SuperviseConfig{Policy: FTRespawn, MaxRestarts: 1},
	}
	s.SpareProvider = func(failedNode int) (int, error) {
		name := alloc.Granted.Nodes[failedNode].Name
		res, err := mgr.Realloc(alloc, name, rm.RetryConfig{MaxAttempts: 2, BaseBackoff: time.Microsecond})
		if err != nil {
			return -1, err
		}
		return res.GrantedIndex, nil
	}

	// Capture the initial bindings to prove survivors are untouched.
	mapper, _ := core.NewMapper(alloc.Granted.Clone(), s.Layout, s.Opts)
	m0, err := mapper.Map(12)
	if err != nil {
		t.Fatal(err)
	}
	plan0, err := bind.Compute(alloc.Granted.Clone(), m0, bind.Specific, hw.LevelPU)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := s.Run(12, 20, InjectionPlan{NodeFailures: []NodeFailure{{Node: 0, Step: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.FinalRanks != 12 {
		t.Fatalf("job did not complete: %+v", rep)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts = %d", rep.Restarts)
	}
	if rep.RanksMigrated != 6 {
		t.Fatalf("ranks migrated = %d, want 6", rep.RanksMigrated)
	}
	if len(rep.Events) != 1 || rep.Events[0].Action != "respawn" {
		t.Fatalf("events = %+v", rep.Events)
	}
	ev := rep.Events[0]
	if !reflect.DeepEqual(ev.FailedNodes, []int{0}) {
		t.Fatalf("failed nodes = %v", ev.FailedNodes)
	}
	wantReplay := 6 * (ev.DetectedStep - 3)
	if ev.ReplaySteps != wantReplay || rep.ReplaySteps != wantReplay {
		t.Fatalf("replay = %d, want %d", ev.ReplaySteps, wantReplay)
	}
	// Every rank logically executed all 20 steps across incarnations.
	for r := 0; r < 12; r++ {
		if got := rep.StepsExecuted(r); got != 20 {
			t.Fatalf("rank %d executed %d steps", r, got)
		}
		if o := rep.Outcomes[r]; o.State != Done || o.Steps != 20 {
			t.Fatalf("outcome = %+v", o)
		}
	}
	// Survivors (node 1) keep placement, binding, and process identity.
	for r := 0; r < 12; r++ {
		if m0.Placements[r].Node != 1 {
			continue
		}
		if rep.Procs[r].StartStep != 0 || rep.Procs[r].Node != 1 {
			t.Fatalf("survivor %d was restarted: %+v", r, rep.Procs[r])
		}
		if !reflect.DeepEqual(rep.Map.Placements[r].PUs, m0.Placements[r].PUs) {
			t.Fatalf("survivor %d placement changed", r)
		}
		if !rep.Plan.Bindings[r].CPUs.Equal(plan0.Bindings[r].CPUs) {
			t.Fatalf("survivor %d binding changed", r)
		}
	}
	// Respawned ranks live on the replacement node (granted index 2).
	for r := 0; r < 12; r++ {
		if m0.Placements[r].Node != 0 {
			continue
		}
		if rep.Procs[r].Node != 2 || rep.Procs[r].StartStep != 3 {
			t.Fatalf("respawned rank %d = %+v", r, rep.Procs[r])
		}
	}
	if len(rep.Archived) != 6 {
		t.Fatalf("archived incarnations = %d", len(rep.Archived))
	}
	for _, p := range rep.Archived {
		if len(p.History) != 3 {
			t.Fatalf("archived rank %d ran %d steps, want 3", p.Rank, len(p.History))
		}
	}
	if rep.TotalRemapUs <= 0 {
		t.Fatal("remap time not recorded")
	}
	if alloc.SpareCount() != 0 {
		t.Fatal("spare should be consumed")
	}
}

func TestRespawnBudgetExhaustedAborts(t *testing.T) {
	s := supervisor(t, 2, FTRespawn)
	s.Config.MaxRestarts = 0
	rep, err := s.Run(12, 20, InjectionPlan{Failures: []Failure{{Rank: 1, Step: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted || rep.Completed || rep.FinalRanks != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Events) != 1 || rep.Events[0].Action != "abort" || rep.Events[0].Reason == "" {
		t.Fatalf("events = %+v", rep.Events)
	}
	killStep := 2 + rep.DetectionWindow
	for _, o := range rep.Outcomes {
		switch o.Rank {
		case 1:
			if o.State != Failed || o.Steps != 2 {
				t.Fatalf("failed rank = %+v", o)
			}
		default:
			if o.State != Killed || o.Steps != killStep {
				t.Fatalf("survivor = %+v, want killed at %d", o, killStep)
			}
		}
	}
}

func TestRespawnWithoutSpareUsesFreeCapacity(t *testing.T) {
	// 8 ranks with csbnh pack 6 onto node 0 and 2 onto node 1. Node 0
	// dies; node 1 still has 10 free PUs, so respawn fits without any
	// spare provider.
	s := supervisor(t, 2, FTRespawn)
	rep, err := s.Run(8, 20, InjectionPlan{NodeFailures: []NodeFailure{{Node: 0, Step: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Restarts != 1 || rep.RanksMigrated != 6 {
		t.Fatalf("report: completed=%v restarts=%d migrated=%d", rep.Completed, rep.Restarts, rep.RanksMigrated)
	}
	for r := 0; r < 8; r++ {
		if rep.Map.Placements[r].Node != 1 {
			t.Fatalf("rank %d on node %d after node-0 loss", r, rep.Map.Placements[r].Node)
		}
	}
}

func TestRespawnNoCapacityAborts(t *testing.T) {
	// Full cluster, node dies, no spare provider: remap must fail and the
	// job aborts gracefully.
	s := supervisor(t, 2, FTRespawn)
	rep, err := s.Run(24, 20, InjectionPlan{NodeFailures: []NodeFailure{{Node: 0, Step: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted || len(rep.Events) != 1 || rep.Events[0].Action != "abort" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCustomDetectionWindow(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	s.Config.DetectionWindow = 7
	rep, err := s.Run(8, 20, InjectionPlan{Failures: []Failure{{Rank: 0, Step: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectionWindow != 7 {
		t.Fatalf("window = %d", rep.DetectionWindow)
	}
	if rep.Events[0].DetectedStep != 9 {
		t.Fatalf("detected at %d, want 9", rep.Events[0].DetectedStep)
	}
}

// --- Satellite: failure edge cases ---

func TestFailureAtStepZero(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	rep, err := s.Run(8, 10, InjectionPlan{Failures: []Failure{{Rank: 2, Step: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if o := rep.Outcomes[2]; o.State != Failed || o.Steps != 0 {
		t.Fatalf("outcome = %+v", o)
	}
	if len(rep.Procs[2].History) != 0 {
		t.Fatal("rank 2 must not have executed")
	}
	// Respawn at step 0 also works: the rank replays from scratch.
	r := supervisor(t, 2, FTRespawn)
	rep2, err := r.Run(8, 10, InjectionPlan{Failures: []Failure{{Rank: 2, Step: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Completed || rep2.StepsExecuted(2) != 10 {
		t.Fatalf("respawn from step 0: %+v", rep2)
	}
}

func TestFailureOfRankZero(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	rep, err := s.Run(8, 10, InjectionPlan{Failures: []Failure{{Rank: 0, Step: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if o := rep.Outcomes[0]; o.State != Failed || o.Steps != 3 {
		t.Fatalf("rank 0 outcome = %+v", o)
	}
	if !rep.Completed || rep.FinalRanks != 7 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAllRanksFail(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	var fs []Failure
	for r := 0; r < 8; r++ {
		fs = append(fs, Failure{Rank: r, Step: 2})
	}
	rep, err := s.Run(8, 10, InjectionPlan{Failures: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed || rep.FinalRanks != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, o := range rep.Outcomes {
		if o.State != Failed || o.Steps != 2 {
			t.Fatalf("outcome = %+v", o)
		}
	}
	// Under respawn every rank restarts (plenty of capacity: their own
	// old spots are free again).
	r := supervisor(t, 2, FTRespawn)
	rep2, err := r.Run(8, 10, InjectionPlan{Failures: fs})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Completed || rep2.FinalRanks != 8 || rep2.Restarts != 1 {
		t.Fatalf("respawn all: %+v", rep2)
	}
}

func TestFailureAfterCompletionIsNoOp(t *testing.T) {
	for _, policy := range []FTPolicy{FTAbort, FTShrink, FTRespawn} {
		s := supervisor(t, 2, policy)
		rep, err := s.Run(8, 10, InjectionPlan{
			Failures:     []Failure{{Rank: 1, Step: 10}, {Rank: 2, Step: 500}},
			NodeFailures: []NodeFailure{{Node: 0, Step: 99}},
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if !rep.Completed || rep.FinalRanks != 8 || len(rep.Events) != 0 || rep.Restarts != 0 {
			t.Fatalf("%v: post-completion failure must be a no-op: %+v", policy, rep)
		}
		for _, o := range rep.Outcomes {
			if o.State != Done || o.Steps != 10 {
				t.Fatalf("%v: outcome = %+v", policy, o)
			}
		}
	}
}

func TestFailureDetectedOnlyAtTeardown(t *testing.T) {
	// A failure in the last window is recorded but never recovered.
	s := supervisor(t, 2, FTRespawn)
	rep, err := s.Run(8, 10, InjectionPlan{Failures: []Failure{{Rank: 4, Step: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts != 0 || rep.FinalRanks != 7 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Events) != 1 || rep.Events[0].Action != "teardown" || rep.Events[0].DetectedStep != 10 {
		t.Fatalf("events = %+v", rep.Events)
	}
}

func TestSupervisorErrors(t *testing.T) {
	s := supervisor(t, 2, FTShrink)
	if _, err := s.Run(8, 0, InjectionPlan{}); err == nil {
		t.Fatal("zero steps")
	}
	if _, err := s.Run(8, 10, InjectionPlan{Failures: []Failure{{Rank: 99, Step: 1}}}); err == nil {
		t.Fatal("unknown rank")
	}
	if _, err := s.Run(8, 10, InjectionPlan{Failures: []Failure{{Rank: 1, Step: -1}}}); err == nil {
		t.Fatal("negative step")
	}
	if _, err := s.Run(8, 10, InjectionPlan{NodeFailures: []NodeFailure{{Node: 9, Step: 1}}}); err == nil {
		t.Fatal("unknown node")
	}
	if _, err := s.Run(8, 10, InjectionPlan{NodeFailures: []NodeFailure{{Node: 0, Step: -2}}}); err == nil {
		t.Fatal("negative node step")
	}
}

func TestFTPolicyStrings(t *testing.T) {
	if FTAbort.String() != "abort" || FTShrink.String() != "shrink" || FTRespawn.String() != "respawn" {
		t.Fatal("names")
	}
	if FTPolicy(9).String() == "" {
		t.Fatal("unknown")
	}
	for _, name := range []string{"abort", "shrink", "respawn"} {
		p, err := ParseFTPolicy(name)
		if err != nil || p.String() != name {
			t.Fatalf("round trip %q", name)
		}
	}
	if _, err := ParseFTPolicy("explode"); err == nil {
		t.Fatal("bad policy")
	}
}
