// Package orte simulates the parallel run-time environment of §III: per-node
// daemons launch the local processes of a job according to a mapping plan,
// and a virtual OS scheduler runs each process only on the processing units
// its binding allows. The simulation makes binding semantics observable:
// with no restriction processes migrate across the node, with a specific
// single-PU binding they never migrate, and oversubscription appears as
// multiple processes occupying one PU in the same step.
package orte

import (
	"fmt"
	"sync"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/hw"
)

// Process is one launched rank (or one incarnation of a rank, when a
// supervisor respawns failed ranks).
type Process struct {
	// Rank and Node locate the process.
	Rank int
	Node int
	// Allowed is the CPU set the virtual scheduler may run the process
	// on (never nil after launch; unbound processes get the node's full
	// usable set).
	Allowed *hw.CPUSet
	// StartStep is the virtual step this incarnation began executing at
	// (0 for an initial launch, the failure step for a respawn).
	StartStep int
	// History records the PU OS index the process occupied at each step,
	// starting at StartStep.
	History []int
}

// Migrations returns how many times the process changed PUs.
func (p *Process) Migrations() int {
	n := 0
	for i := 1; i < len(p.History); i++ {
		if p.History[i] != p.History[i-1] {
			n++
		}
	}
	return n
}

// DistinctPUs returns the number of distinct PUs the process touched.
func (p *Process) DistinctPUs() int {
	seen := map[int]bool{}
	for _, pu := range p.History {
		seen[pu] = true
	}
	return len(seen)
}

// Daemon is the per-node launch agent.
type Daemon struct {
	// Node is the cluster node index the daemon manages.
	Node int
	// Ranks are the local ranks, in launch order.
	Ranks []int
}

// Job is a launched (completed) parallel job.
type Job struct {
	// Procs holds one entry per rank.
	Procs []*Process
	// Daemons holds the per-node launch agents that ran the job.
	Daemons []*Daemon
	// Steps is the number of virtual scheduler steps executed.
	Steps int
}

// Runtime launches jobs on a cluster.
type Runtime struct {
	Cluster *cluster.Cluster
}

// NewRuntime creates a runtime for the cluster.
func NewRuntime(c *cluster.Cluster) *Runtime { return &Runtime{Cluster: c} }

// Launch executes a job: it validates the map and binding plan, creates a
// daemon per used node, and runs every process for the given number of
// virtual scheduler steps. Each process runs concurrently (a goroutine);
// the virtual scheduler deterministically rotates each process through its
// allowed set, which models inter-processor migration whenever the set has
// more than one PU.
func (rt *Runtime) Launch(m *core.Map, plan *bind.Plan, steps int) (*Job, error) {
	if m == nil || m.NumRanks() == 0 {
		return nil, fmt.Errorf("orte: empty map")
	}
	if steps <= 0 {
		return nil, fmt.Errorf("orte: non-positive step count %d", steps)
	}
	if err := m.Validate(rt.Cluster); err != nil {
		return nil, fmt.Errorf("orte: invalid map: %v", err)
	}
	if plan != nil {
		if len(plan.Bindings) != m.NumRanks() {
			return nil, fmt.Errorf("orte: plan has %d bindings for %d ranks",
				len(plan.Bindings), m.NumRanks())
		}
		if err := plan.Check(rt.Cluster); err != nil {
			return nil, fmt.Errorf("orte: unsatisfiable plan: %v", err)
		}
	}

	job := &Job{Steps: steps}
	perNode := m.RanksByNode()
	for node := 0; node < rt.Cluster.NumNodes(); node++ {
		if ranks, ok := perNode[node]; ok {
			job.Daemons = append(job.Daemons, &Daemon{Node: node, Ranks: ranks})
		}
	}

	job.Procs = make([]*Process, m.NumRanks())
	var wg sync.WaitGroup
	errs := make(chan error, m.NumRanks())
	for _, d := range job.Daemons {
		for _, rank := range d.Ranks {
			p := &Process{Rank: rank, Node: d.Node}
			if plan != nil && plan.Bindings[rank].CPUs != nil {
				p.Allowed = plan.Bindings[rank].CPUs.Clone()
			} else {
				p.Allowed = rt.Cluster.Node(d.Node).Topo.AllowedSet()
			}
			if p.Allowed.Empty() {
				return nil, fmt.Errorf("orte: rank %d has no runnable PUs", rank)
			}
			job.Procs[rank] = p
			wg.Add(1)
			go func(p *Process) {
				defer wg.Done()
				width := p.Allowed.Count()
				p.History = make([]int, steps)
				for s := 0; s < steps; s++ {
					// Virtual scheduler: rotate through the allowed set,
					// offset by rank so co-located processes spread out.
					pu := p.Allowed.Nth((p.Rank + s) % width)
					if pu < 0 {
						errs <- fmt.Errorf("orte: rank %d schedule failure", p.Rank)
						return
					}
					p.History[s] = pu
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	return job, nil
}

// MaxOccupancy returns, over all steps, the largest number of processes
// occupying one PU of one node simultaneously — 1 for a well-bound,
// non-oversubscribed job.
func (j *Job) MaxOccupancy() int {
	max := 0
	for s := 0; s < j.Steps; s++ {
		counts := map[[2]int]int{}
		for _, p := range j.Procs {
			if p == nil || s >= len(p.History) {
				continue
			}
			k := [2]int{p.Node, p.History[s]}
			counts[k]++
			if counts[k] > max {
				max = counts[k]
			}
		}
	}
	return max
}

// CheckEnforcement verifies that no process ever ran outside its allowed
// set — the launch-time guarantee of §III-B.
func (j *Job) CheckEnforcement() error {
	for _, p := range j.Procs {
		if p == nil {
			return fmt.Errorf("orte: missing process record")
		}
		for s, pu := range p.History {
			if !p.Allowed.Contains(pu) {
				return fmt.Errorf("orte: rank %d escaped its binding at step %d (PU %d not in %s)",
					p.Rank, s, pu, p.Allowed)
			}
		}
	}
	return nil
}
