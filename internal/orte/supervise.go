package orte

import (
	"context"
	"fmt"
	"time"

	"lama/internal/bind"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/obs"
)

// FTPolicy selects what the run-time does when it detects a failure.
type FTPolicy int

const (
	// FTAbort kills the whole job — the paper's (and the seed's) ORTE
	// behavior, and the default.
	FTAbort FTPolicy = iota
	// FTShrink lets the surviving ranks run to completion with a smaller
	// world size.
	FTShrink
	// FTRespawn re-allocates resources (spares for dead nodes), remaps the
	// failed ranks with the locality-preserving incremental LAMA, and
	// restarts them from their failure step.
	FTRespawn
)

// String names the policy.
func (p FTPolicy) String() string {
	switch p {
	case FTAbort:
		return "abort"
	case FTShrink:
		return "shrink"
	case FTRespawn:
		return "respawn"
	default:
		return fmt.Sprintf("ft(%d)", int(p))
	}
}

// ParseFTPolicy parses "abort" | "shrink" | "respawn".
func ParseFTPolicy(s string) (FTPolicy, error) {
	switch s {
	case "abort":
		return FTAbort, nil
	case "shrink":
		return FTShrink, nil
	case "respawn":
		return FTRespawn, nil
	default:
		return 0, fmt.Errorf("orte: unknown fault-tolerance policy %q (want abort|shrink|respawn)", s)
	}
}

// SuperviseConfig tunes the supervision loop.
type SuperviseConfig struct {
	// Policy is the degradation policy (default FTAbort).
	Policy FTPolicy
	// MaxRestarts is the per-job restart budget: how many respawn events
	// the job may consume before a further failure aborts it. Negative
	// means unlimited. (Only meaningful under FTRespawn.)
	MaxRestarts int
	// DetectionWindow is the heartbeat-based detection latency in steps: a
	// failure at step t is acted on at step t+window. Zero or negative
	// selects the seed's routed-tree delay (1 + binomial rounds over the
	// job's daemons).
	DetectionWindow int
	// StepDelay stretches each virtual step with a real wall-clock sleep
	// (zero, the default, keeps runs as fast as possible). It exists for
	// the live telemetry plane: lamasim -step-delay keeps a churn run
	// alive long enough for -listen scrapers to watch /metrics and
	// /events while it executes. The sleep happens after the step's
	// events, so it never changes what a run computes — only how long it
	// takes.
	StepDelay time.Duration
}

// RecoveryEvent records one supervisor reaction to detected failures.
type RecoveryEvent struct {
	// FailStep is the earliest failure step in the group; DetectedStep the
	// step the supervisor acted at (== steps for teardown-time detection).
	FailStep, DetectedStep int
	// Ranks are the failed ranks handled by this event, ascending.
	Ranks []int
	// FailedNodes lists nodes that were fully failed, ascending.
	FailedNodes []int
	// Action is what was done: "abort", "shrink", "respawn", "teardown"
	// (failure noticed only after the last step), or the elastic resize
	// operations "grow" / "release".
	Action string
	// Reason is set when Action is "abort" under a non-abort policy
	// (budget exhausted, no spares, remap impossible), or when an elastic
	// resize was rejected (the job continues at its old size).
	Reason string
	// Delta is the world-size change of a "grow"/"release" event
	// (positive = ranks added, negative = ranks released); zero for
	// failure events.
	Delta int
	// LocalityBefore and LocalityAfter bracket the map's neighbor
	// locality across an elastic resize (core.NeighborLocality); zero for
	// failure events.
	LocalityBefore, LocalityAfter float64
	// RanksMoved, ReplaySteps, and RemapUs are respawn costs: placements
	// changed, steps re-executed after restart, and remap planning time.
	RanksMoved  int
	ReplaySteps int
	RemapUs     float64
}

// SuperviseReport is the result of a supervised (fault-tolerant) run.
type SuperviseReport struct {
	Policy FTPolicy
	// Steps is the requested virtual step count; DetectionWindow the
	// effective heartbeat window used.
	Steps, DetectionWindow int
	// Outcomes has one entry per rank, ordered by rank.
	Outcomes []Outcome
	// Events lists the recovery events in order.
	Events []RecoveryEvent
	// Restarts counts respawn events; RanksMigrated sums placements
	// actually moved by remaps; ReplaySteps sums re-executed steps;
	// TotalRemapUs sums remap planning time.
	Restarts, RanksMigrated, ReplaySteps int
	TotalRemapUs                         float64
	// Grows and Shrinks count the elastic resizes that were applied
	// (rejected resizes appear in Events with a Reason but are not
	// counted here).
	Grows, Shrinks int
	// Completed reports that the job ran through its final step with at
	// least one rank; FinalRanks is the world size at the end; Aborted
	// reports the job was killed.
	Completed  bool
	FinalRanks int
	Aborted    bool
	// Map and Plan are the final (possibly remapped) mapping and binding
	// plan; Procs the final incarnation of every rank; Archived the dead
	// incarnations replaced by respawns.
	Map      *core.Map
	Plan     *bind.Plan
	Procs    []*Process
	Archived []*Process
	// Monitor carries the seed-compatible monitor report under FTAbort.
	Monitor *MonitorReport
}

// StepsExecuted returns the total steps a rank executed across all of its
// incarnations (replayed steps count once per execution).
func (r *SuperviseReport) StepsExecuted(rank int) int {
	n := 0
	for _, p := range r.Archived {
		if p.Rank == rank {
			n += len(p.History)
		}
	}
	if rank >= 0 && rank < len(r.Procs) && r.Procs[rank] != nil {
		n += len(r.Procs[rank].History)
	}
	return n
}

// Supervisor runs jobs under a closed-loop fault-tolerance pipeline:
// failure injection -> heartbeat detection -> spare re-allocation ->
// locality-preserving remap -> restart. It owns the mapping parameters so
// it can re-run the LAMA incrementally after failures.
type Supervisor struct {
	Runtime    *Runtime
	Layout     core.Layout
	Opts       core.Options
	BindPolicy bind.Policy
	BindLevel  hw.Level
	Config     SuperviseConfig
	// SpareProvider, when non-nil, is invoked once per fully-failed node
	// under FTRespawn; it must make a replacement node available on the
	// runtime's cluster (e.g. via rm.Realloc, which appends the granted
	// view to the same cluster) and return its node index. A nil provider
	// means respawn must fit on the surviving nodes' free resources.
	SpareProvider func(failedNode int) (int, error)
	// InitialMap, when non-nil, is used as the job's initial placement
	// instead of a fresh LAMA run — the hook that lets a caller feed a
	// pipeline-produced map (e.g. one post-processed by the fault-aware
	// spread stage) into supervision. Its rank count must equal np.
	InitialMap *core.Map
}

// Run launches np ranks for the given number of steps under the
// supervisor's policy, applying the injection plan. Failures scheduled at
// or after `steps` are no-ops (the job has already completed); failures
// for unknown ranks or nodes, or at negative steps, are errors.
func (s *Supervisor) Run(np, steps int, plan InjectionPlan) (*SuperviseReport, error) {
	return s.RunContext(context.Background(), np, steps, plan)
}

// RunContext is Run with cooperative cancellation: the context is checked
// at simulation-step boundaries in the supervised loop (never inside a
// step, so recovery for failures already detected at the current step
// completes first). A canceled run returns the cancellation error; the
// partially-built report is discarded.
func (s *Supervisor) RunContext(ctx context.Context, np, steps int, plan InjectionPlan) (*SuperviseReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if steps <= 0 {
		return nil, fmt.Errorf("orte: non-positive step count %d", steps)
	}
	var m *core.Map
	if s.InitialMap != nil {
		if s.InitialMap.NumRanks() != np {
			return nil, fmt.Errorf("orte: initial map has %d ranks, want %d", s.InitialMap.NumRanks(), np)
		}
		m = s.InitialMap
	} else {
		mapper, err := core.NewMapper(s.Runtime.Cluster, s.Layout, s.Opts)
		if err != nil {
			return nil, err
		}
		m, err = mapper.MapContext(ctx, np)
		if err != nil {
			return nil, err
		}
	}
	o := s.Opts.Obs
	endBind := o.StartSpan(obs.SpanBind)
	bplan, err := bind.Compute(s.Runtime.Cluster, m, s.BindPolicy, s.BindLevel)
	endBind()
	if err != nil {
		return nil, err
	}
	plan.Normalize()
	// A rank may legitimately be scheduled to fail after a grow creates
	// it, so rank validation bounds against the largest possible world.
	maxNP := np
	for _, r := range plan.Resizes {
		if r.Step < 0 {
			return nil, fmt.Errorf("orte: negative resize step %d", r.Step)
		}
		if r.Delta == 0 {
			return nil, fmt.Errorf("orte: zero resize delta at step %d", r.Step)
		}
		if r.Delta > 0 {
			maxNP += r.Delta
		}
	}
	for _, f := range plan.Failures {
		if f.Rank < 0 || f.Rank >= maxNP {
			return nil, fmt.Errorf("orte: failure for unknown rank %d", f.Rank)
		}
		if f.Step < 0 {
			return nil, fmt.Errorf("orte: negative failure step %d", f.Step)
		}
	}
	for _, nf := range plan.NodeFailures {
		if nf.Node < 0 || nf.Node >= s.Runtime.Cluster.NumNodes() {
			return nil, fmt.Errorf("orte: node failure for unknown node %d", nf.Node)
		}
		if nf.Step < 0 {
			return nil, fmt.Errorf("orte: negative node-failure step %d", nf.Step)
		}
	}

	if s.Config.Policy == FTAbort {
		if len(plan.Resizes) > 0 {
			return nil, fmt.Errorf("orte: elastic resizes require the shrink or respawn policy")
		}
		return s.runAbort(m, bplan, np, steps, plan)
	}
	return s.runSupervised(ctx, m, bplan, np, steps, plan)
}

// runAbort reproduces the seed's kill-the-job behavior exactly by
// delegating to LaunchMonitored (node failures are expanded to the rank
// crashes they imply under the initial map).
func (s *Supervisor) runAbort(m *core.Map, bplan *bind.Plan, np, steps int, plan InjectionPlan) (*SuperviseReport, error) {
	o := s.Opts.Obs
	if o.Enabled() {
		o.Emit(obs.SrcSupervise, obs.EvStart, obs.NoStep,
			obs.F("policy", FTAbort.String()), obs.F("np", np), obs.F("steps", steps))
	}
	var failures []Failure
	for _, f := range plan.Failures {
		if f.Step < steps {
			failures = append(failures, f)
		}
	}
	for _, nf := range plan.NodeFailures {
		if nf.Step < steps {
			failures = append(failures, CorrelatedNodeLoss(m, nf.Node, nf.Step)...)
		}
	}
	job, mrep, err := s.Runtime.LaunchMonitored(m, bplan, steps, failures)
	if err != nil {
		return nil, err
	}
	// The hardware losses are real even though the job is gone.
	for _, nf := range plan.NodeFailures {
		if nf.Step < steps {
			s.Runtime.Cluster.FailNode(nf.Node)
		}
	}
	rep := &SuperviseReport{
		Policy: FTAbort, Steps: steps, DetectionWindow: mrep.DetectionSteps,
		Outcomes: mrep.Outcomes, Map: m, Plan: bplan, Procs: job.Procs, Monitor: mrep,
	}
	if mrep.FirstFailure == nil {
		rep.Completed = true
		rep.FinalRanks = np
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvDone, obs.NoStep,
				obs.F("completed", true), obs.F("final_ranks", np))
		}
		return rep, nil
	}
	rep.Aborted = true
	ev := RecoveryEvent{
		FailStep:     mrep.FirstFailure.Step,
		DetectedStep: mrep.FirstFailure.Step + mrep.DetectionSteps,
		Action:       "abort",
	}
	for _, out := range mrep.Outcomes {
		if out.State == Failed {
			ev.Ranks = append(ev.Ranks, out.Rank)
		}
	}
	rep.Events = []RecoveryEvent{ev}
	o.Reg().Counter("lama_failures_detected_total").Add(int64(len(ev.Ranks)))
	if o.Enabled() {
		o.Emit(obs.SrcSupervise, obs.EvDetect, ev.DetectedStep,
			obs.F("fail_step", ev.FailStep), obs.F("ranks", ev.Ranks))
		o.Emit(obs.SrcSupervise, obs.EvAbort, ev.DetectedStep, obs.F("policy", FTAbort.String()))
	}
	return rep, nil
}

// runSupervised is the step-wise supervision loop used by FTShrink and
// FTRespawn: a deterministic virtual scheduler identical to Launch's,
// interleaved with failure application, heartbeat detection, and
// recovery.
func (s *Supervisor) runSupervised(ctx context.Context, m *core.Map, bplan *bind.Plan, np, steps int, plan InjectionPlan) (*SuperviseReport, error) {
	c := s.Runtime.Cluster
	window := s.Config.DetectionWindow
	if window <= 0 {
		used := len(m.RanksByNode())
		spawn, err := SimulateSpawn(maxInt(1, used), BinomialSpawn, 1)
		if err != nil {
			return nil, err
		}
		window = 1 + spawn.Rounds
	}
	rep := &SuperviseReport{
		Policy: s.Config.Policy, Steps: steps, DetectionWindow: window,
		Map: m, Plan: bplan,
	}
	o := s.Opts.Obs
	if o.Enabled() {
		o.Emit(obs.SrcSupervise, obs.EvStart, obs.NoStep,
			obs.F("policy", s.Config.Policy.String()), obs.F("np", np),
			obs.F("steps", steps), obs.F("window", window))
	}

	procs := make([]*Process, np)
	for rank := 0; rank < np; rank++ {
		p, err := s.newProcess(m, bplan, rank, 0)
		if err != nil {
			return nil, err
		}
		procs[rank] = p
	}
	alive := make([]bool, np)
	deadAt := make([]int, np)
	handled := make([]bool, np)
	for i := range alive {
		alive[i] = true
	}
	kill := func(rank, step int) {
		if rank < len(alive) && alive[rank] {
			alive[rank] = false
			deadAt[rank] = step
			handled[rank] = false
		}
	}

	// grow expands the world by delta ranks at a step: an incremental map
	// over the new ranks only (existing placements provably untouched),
	// a rebind, and fresh processes starting at the current step. A grow
	// the cluster cannot host is rejected — recorded with a Reason — and
	// the job continues at its old size.
	grow := func(delta, step int) {
		ev := RecoveryEvent{FailStep: step, DetectedStep: step, Action: "grow", Delta: delta}
		reject := func(reason string) {
			ev.Reason = reason
			rep.Events = append(rep.Events, ev)
			if o.Enabled() {
				o.Emit(obs.SrcSupervise, obs.EvGrow, step,
					obs.F("delta", delta), obs.F("ok", false), obs.F("reason", reason))
			}
		}
		nm, xrep, err := core.ExpandMap(c, s.Layout, s.Opts, rep.Map, delta)
		if err != nil {
			reject(fmt.Sprintf("grow rejected: %v", err))
			return
		}
		endBind := o.StartSpan(obs.SpanBind)
		nplan, err := bind.Compute(c, nm, s.BindPolicy, s.BindLevel)
		endBind()
		if err == nil {
			err = nplan.Check(c)
		}
		if err != nil {
			reject(fmt.Sprintf("grow rebind failed: %v", err))
			return
		}
		oldNP := len(procs)
		fresh := make([]*Process, 0, delta)
		for r := oldNP; r < oldNP+delta; r++ {
			p, perr := s.newProcess(nm, nplan, r, step)
			if perr != nil {
				reject(perr.Error())
				return
			}
			fresh = append(fresh, p)
		}
		procs = append(procs, fresh...)
		for range fresh {
			alive = append(alive, true)
			deadAt = append(deadAt, 0)
			handled = append(handled, false)
			ev.Ranks = append(ev.Ranks, len(ev.Ranks)+oldNP)
		}
		ev.LocalityBefore, ev.LocalityAfter = xrep.LocalityBefore, xrep.LocalityAfter
		rep.Map, rep.Plan = nm, nplan
		rep.Events = append(rep.Events, ev)
		rep.Grows++
		o.Reg().Counter("lama_grows_total").Inc()
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvGrow, step,
				obs.F("delta", delta), obs.F("ok", true), obs.F("new_np", len(procs)),
				obs.F("locality_before", ev.LocalityBefore),
				obs.F("locality_after", ev.LocalityAfter))
		}
	}

	// release shrinks the world by k ranks at a step: the highest-numbered
	// ranks hand back their resources (pure map truncation, survivors
	// byte-identical), clamped so at least one rank keeps running.
	release := func(k, step int) {
		if k >= len(procs) {
			k = len(procs) - 1
		}
		if k <= 0 {
			return
		}
		ev := RecoveryEvent{FailStep: step, DetectedStep: step, Action: "release", Delta: -k}
		for r := len(procs) - k; r < len(procs); r++ {
			ev.Ranks = append(ev.Ranks, r)
		}
		nm, srep, err := core.ShrinkMap(c, rep.Map, ev.Ranks)
		if err != nil {
			ev.Reason = fmt.Sprintf("shrink rejected: %v", err)
			rep.Events = append(rep.Events, ev)
			if o.Enabled() {
				o.Emit(obs.SrcSupervise, obs.EvShrink, step,
					obs.F("delta", -k), obs.F("ok", false), obs.F("reason", ev.Reason))
			}
			return
		}
		endBind := o.StartSpan(obs.SpanBind)
		nplan, err := bind.Compute(c, nm, s.BindPolicy, s.BindLevel)
		endBind()
		if err != nil {
			ev.Reason = fmt.Sprintf("shrink rebind failed: %v", err)
			rep.Events = append(rep.Events, ev)
			if o.Enabled() {
				o.Emit(obs.SrcSupervise, obs.EvShrink, step,
					obs.F("delta", -k), obs.F("ok", false), obs.F("reason", ev.Reason))
			}
			return
		}
		for _, r := range ev.Ranks {
			rep.Archived = append(rep.Archived, procs[r])
		}
		procs = procs[:len(procs)-k]
		alive = alive[:len(procs)]
		deadAt = deadAt[:len(procs)]
		handled = handled[:len(procs)]
		ev.LocalityBefore, ev.LocalityAfter = srep.LocalityBefore, srep.LocalityAfter
		rep.Map, rep.Plan = nm, nplan
		rep.Events = append(rep.Events, ev)
		rep.Shrinks++
		o.Reg().Counter("lama_shrinks_total").Inc()
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvShrink, step,
				obs.F("delta", -k), obs.F("ok", true), obs.F("new_np", len(procs)),
				obs.F("locality_before", ev.LocalityBefore),
				obs.F("locality_after", ev.LocalityAfter))
		}
	}

	fi, ni, ri := 0, 0, 0
	aborted := false
	abortStep := -1
	for step := 0; step < steps && !aborted; step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("orte: supervised run canceled at step %d: %w", step, err)
		}
		// 0. Elastic resizes scheduled for this step (before failures, so
		// a node loss at the same step sees the post-resize world).
		for ri < len(plan.Resizes) && plan.Resizes[ri].Step == step {
			if d := plan.Resizes[ri].Delta; d > 0 {
				grow(d, step)
			} else {
				release(-d, step)
			}
			ri++
		}
		// 1. Whole-node losses scheduled for this step.
		for ni < len(plan.NodeFailures) && plan.NodeFailures[ni].Step == step {
			node := plan.NodeFailures[ni].Node
			c.FailNode(node)
			for r, p := range procs {
				if alive[r] && p.Node == node {
					kill(r, step)
				}
			}
			if o.Enabled() {
				o.Emit(obs.SrcSupervise, obs.EvNodeFailure, step, obs.F("node", node))
			}
			ni++
		}
		// 2. Individual rank crashes scheduled for this step.
		for fi < len(plan.Failures) && plan.Failures[fi].Step == step {
			kill(plan.Failures[fi].Rank, step)
			if o.Enabled() {
				o.Emit(obs.SrcSupervise, obs.EvFailure, step, obs.F("rank", plan.Failures[fi].Rank))
			}
			fi++
		}
		// 3. Heartbeat detection: act on failures whose window elapsed.
		// Dead ranks still inside the window show up as missed heartbeats.
		var due, missed []int
		for r := range procs {
			if alive[r] || handled[r] {
				continue
			}
			if deadAt[r]+window <= step {
				due = append(due, r)
			} else if o.Enabled() {
				missed = append(missed, r)
			}
		}
		if len(missed) > 0 {
			o.Emit(obs.SrcSupervise, obs.EvHeartbeatMiss, step, obs.F("ranks", missed))
		}
		if len(due) > 0 {
			o.Reg().Counter("lama_failures_detected_total").Add(int64(len(due)))
			if o.Enabled() {
				o.Emit(obs.SrcSupervise, obs.EvDetect, step, obs.F("ranks", due))
			}
			if err := s.recover(rep, procs, alive, handled, deadAt, due, step); err != nil {
				return nil, err
			}
			if rep.Aborted {
				aborted = true
				abortStep = step
				break
			}
		}
		// 4. Execute the step: the virtual scheduler rotates each process
		// through its allowed set exactly as Launch does.
		for r, p := range procs {
			if !alive[r] {
				continue
			}
			width := p.Allowed.Count()
			pu := p.Allowed.Nth((r + step) % width)
			if pu < 0 {
				return nil, fmt.Errorf("orte: rank %d schedule failure", r)
			}
			p.History = append(p.History, pu)
		}
		// 5. Optional wall-clock stretch for live observation (see
		// SuperviseConfig.StepDelay); purely temporal, never semantic.
		if s.Config.StepDelay > 0 {
			time.Sleep(s.Config.StepDelay)
		}
	}

	// Failures whose window reaches past the last step are detected at
	// teardown: too late to react, recorded for accounting.
	var late []int
	for r := range procs {
		if !alive[r] && !handled[r] {
			late = append(late, r)
		}
	}
	if !aborted && len(late) > 0 {
		ev := RecoveryEvent{FailStep: deadAt[late[0]], DetectedStep: steps, Ranks: late, Action: "teardown"}
		for _, r := range late {
			if deadAt[r] < ev.FailStep {
				ev.FailStep = deadAt[r]
			}
		}
		rep.Events = append(rep.Events, ev)
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvTeardown, steps,
				obs.F("fail_step", ev.FailStep), obs.F("ranks", late))
		}
	}

	rep.Procs = procs
	for r := range procs {
		o := Outcome{Rank: r}
		switch {
		case alive[r] && !aborted:
			o.State = Done
			o.Steps = steps
		case alive[r] && aborted:
			o.State = Killed
			o.Steps = abortStep
		default:
			o.State = Failed
			o.Steps = deadAt[r]
		}
		rep.Outcomes = append(rep.Outcomes, o)
		if o.State == Done {
			rep.FinalRanks++
		}
	}
	rep.Completed = !aborted && rep.FinalRanks > 0
	if o.Enabled() {
		o.Emit(obs.SrcSupervise, obs.EvDone, obs.NoStep,
			obs.F("completed", rep.Completed), obs.F("final_ranks", rep.FinalRanks),
			obs.F("restarts", rep.Restarts))
	}
	return rep, nil
}

// recover handles one detection event under FTShrink or FTRespawn. It
// updates rep.Map / rep.Plan on a successful respawn, revives the due
// ranks, and sets rep.Aborted when the job cannot be saved (budget
// exhausted, no replacement resources, remap impossible).
func (s *Supervisor) recover(rep *SuperviseReport, procs []*Process,
	alive, handled []bool, deadAt, due []int, step int) error {
	c := s.Runtime.Cluster
	o := s.Opts.Obs
	ev := RecoveryEvent{FailStep: deadAt[due[0]], DetectedStep: step, Ranks: due}
	for _, r := range due {
		if deadAt[r] < ev.FailStep {
			ev.FailStep = deadAt[r]
		}
		handled[r] = true
	}
	for n := 0; n < c.NumNodes(); n++ {
		if !c.NodeFailed(n) {
			continue
		}
		for _, r := range due {
			if procs[r].Node == n {
				ev.FailedNodes = append(ev.FailedNodes, n)
				break
			}
		}
	}

	abort := func(reason string) {
		ev.Action = "abort"
		ev.Reason = reason
		rep.Events = append(rep.Events, ev)
		rep.Aborted = true
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvAbort, step, obs.F("reason", reason))
		}
	}

	if s.Config.Policy == FTShrink {
		ev.Action = "shrink"
		rep.Events = append(rep.Events, ev)
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvShrink, step, obs.F("ranks", due))
		}
		return nil
	}

	// FTRespawn: budget, spares, incremental remap, restart.
	if s.Config.MaxRestarts >= 0 && rep.Restarts >= s.Config.MaxRestarts {
		abort(fmt.Sprintf("restart budget exhausted (%d)", s.Config.MaxRestarts))
		return nil
	}
	for _, node := range ev.FailedNodes {
		if s.SpareProvider == nil {
			continue // respawn must fit on surviving resources
		}
		spare, err := s.SpareProvider(node)
		if err != nil {
			abort(fmt.Sprintf("no replacement for node %d: %v", node, err))
			return nil
		}
		if o.Enabled() {
			o.Emit(obs.SrcSupervise, obs.EvRealloc, step,
				obs.F("failed_node", node), obs.F("spare", spare))
		}
	}
	t0 := time.Now()
	nm, rrep, err := core.RemapSurvivors(c, s.Layout, s.Opts, rep.Map, due)
	if err != nil {
		abort(fmt.Sprintf("remap failed: %v", err))
		return nil
	}
	endBind := o.StartSpan(obs.SpanBind)
	nplan, err := bind.Compute(c, nm, s.BindPolicy, s.BindLevel)
	endBind()
	if err != nil {
		abort(fmt.Sprintf("rebind failed: %v", err))
		return nil
	}
	if err := nplan.Check(c); err != nil {
		abort(fmt.Sprintf("rebind unsatisfiable: %v", err))
		return nil
	}
	ev.RemapUs = float64(time.Since(t0)) / float64(time.Microsecond)
	ev.RanksMoved = rrep.RanksMoved
	ev.LocalityBefore, ev.LocalityAfter = rrep.LocalityBefore, rrep.LocalityAfter
	o.Reg().Histogram("lama_remap_duration_us", obs.LatencyBucketsUs).Observe(ev.RemapUs)
	if o.Enabled() {
		o.Emit(obs.SrcSupervise, obs.EvRemap, step,
			obs.F("ranks_moved", ev.RanksMoved), obs.F("us", ev.RemapUs))
	}

	// Restart the failed ranks: each new incarnation resumes from its
	// failure step (checkpoint semantics) and replays the steps it missed
	// while the failure went undetected, so it rejoins the others in
	// lockstep at the current step.
	for _, r := range due {
		rep.Archived = append(rep.Archived, procs[r])
		p, err := s.newProcess(nm, nplan, r, deadAt[r])
		if err != nil {
			abort(err.Error())
			return nil
		}
		width := p.Allowed.Count()
		for t := deadAt[r]; t < step; t++ {
			p.History = append(p.History, p.Allowed.Nth((r+t)%width))
		}
		ev.ReplaySteps += step - deadAt[r]
		procs[r] = p
		alive[r] = true
		handled[r] = false
	}
	ev.Action = "respawn"
	rep.Events = append(rep.Events, ev)
	rep.Restarts++
	rep.RanksMigrated += ev.RanksMoved
	rep.ReplaySteps += ev.ReplaySteps
	rep.TotalRemapUs += ev.RemapUs
	rep.Map = nm
	rep.Plan = nplan
	if reg := o.Reg(); reg != nil {
		reg.Counter("lama_restarts_total").Inc()
		reg.Counter("lama_ranks_migrated_total").Add(int64(ev.RanksMoved))
		reg.Counter("lama_replay_steps_total").Add(int64(ev.ReplaySteps))
		reg.Histogram("lama_recovery_replay_steps", obs.StepBuckets).Observe(float64(ev.ReplaySteps))
	}
	if o.Enabled() {
		o.Emit(obs.SrcSupervise, obs.EvRespawn, step,
			obs.F("ranks", due), obs.F("replay_steps", ev.ReplaySteps))
	}
	return nil
}

// newProcess builds one rank's process record from a map and plan, the
// way Launch does (bound CPU set or the node's full usable set).
func (s *Supervisor) newProcess(m *core.Map, bplan *bind.Plan, rank, startStep int) (*Process, error) {
	node := m.Placements[rank].Node
	p := &Process{Rank: rank, Node: node, StartStep: startStep}
	if bplan != nil && bplan.Bindings[rank].CPUs != nil {
		p.Allowed = bplan.Bindings[rank].CPUs.Clone()
	} else {
		p.Allowed = s.Runtime.Cluster.Node(node).Topo.AllowedSet()
	}
	if p.Allowed.Empty() {
		return nil, fmt.Errorf("orte: rank %d has no runnable PUs", rank)
	}
	return p, nil
}
