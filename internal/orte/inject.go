package orte

import (
	"fmt"
	"math/rand"
	"sort"

	"lama/internal/core"
)

// NodeFailure injects the loss of a whole node at a step (0-based): the
// node's hardware becomes unusable and every rank running on it dies.
type NodeFailure struct {
	Node int
	Step int
}

// InjectionPlan is a deterministic failure schedule for one supervised
// run: individual rank crashes plus correlated whole-node losses.
type InjectionPlan struct {
	Failures     []Failure
	NodeFailures []NodeFailure
}

// Empty reports whether the plan injects nothing.
func (p *InjectionPlan) Empty() bool {
	return p == nil || (len(p.Failures) == 0 && len(p.NodeFailures) == 0)
}

// Normalize sorts both schedules by (Step, Rank) / (Step, Node) and drops
// exact duplicates, so a plan applies identically regardless of the order
// failures were declared in.
func (p *InjectionPlan) Normalize() {
	sort.Slice(p.Failures, func(i, j int) bool {
		if p.Failures[i].Step != p.Failures[j].Step {
			return p.Failures[i].Step < p.Failures[j].Step
		}
		return p.Failures[i].Rank < p.Failures[j].Rank
	})
	p.Failures = dedupeFailures(p.Failures)
	sort.Slice(p.NodeFailures, func(i, j int) bool {
		if p.NodeFailures[i].Step != p.NodeFailures[j].Step {
			return p.NodeFailures[i].Step < p.NodeFailures[j].Step
		}
		return p.NodeFailures[i].Node < p.NodeFailures[j].Node
	})
	p.NodeFailures = dedupeNodeFailures(p.NodeFailures)
}

func dedupeFailures(fs []Failure) []Failure {
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

func dedupeNodeFailures(fs []NodeFailure) []NodeFailure {
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// CrashAtStep builds the simplest schedule: the given ranks crash at the
// given step.
func CrashAtStep(step int, ranks ...int) []Failure {
	out := make([]Failure, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, Failure{Rank: r, Step: step})
	}
	return out
}

// MTBFSchedule draws, for each of `ranks` processes, an exponential
// time-to-first-failure with the given mean (in steps) from a seeded
// source, and schedules a crash for every rank whose draw lands inside
// the run. The result is deterministic for a given (seed, ranks, steps,
// mtbf) tuple and sorted by (Step, Rank).
func MTBFSchedule(seed int64, ranks, steps int, mtbfSteps float64) ([]Failure, error) {
	if ranks <= 0 || steps <= 0 {
		return nil, fmt.Errorf("orte: non-positive ranks/steps (%d, %d)", ranks, steps)
	}
	if mtbfSteps <= 0 {
		return nil, fmt.Errorf("orte: non-positive MTBF %v", mtbfSteps)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Failure
	for r := 0; r < ranks; r++ {
		t := rng.ExpFloat64() * mtbfSteps
		if s := int(t); s < steps {
			out = append(out, Failure{Rank: r, Step: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Rank < out[j].Rank
	})
	return out, nil
}

// CorrelatedNodeLoss expands a whole-node loss into the rank crashes it
// implies under the given map: every rank placed on the node dies at the
// step. Useful for feeding LaunchMonitored, which only understands rank
// failures; the Supervisor takes NodeFailure directly.
func CorrelatedNodeLoss(m *core.Map, node, step int) []Failure {
	var out []Failure
	for i := range m.Placements {
		if m.Placements[i].Node == node {
			out = append(out, Failure{Rank: m.Placements[i].Rank, Step: step})
		}
	}
	return out
}

// RandomNodeLoss picks one node and one step uniformly from a seeded
// source — a deterministic "some node will die at some point" schedule.
func RandomNodeLoss(seed int64, nodes, steps int) (NodeFailure, error) {
	if nodes <= 0 || steps <= 0 {
		return NodeFailure{}, fmt.Errorf("orte: non-positive nodes/steps (%d, %d)", nodes, steps)
	}
	rng := rand.New(rand.NewSource(seed))
	return NodeFailure{Node: rng.Intn(nodes), Step: rng.Intn(steps)}, nil
}
