package orte

import (
	"fmt"
	"math/rand"
	"sort"

	"lama/internal/cluster"
	"lama/internal/core"
)

// NodeFailure injects the loss of a whole node at a step (0-based): the
// node's hardware becomes unusable and every rank running on it dies.
type NodeFailure struct {
	Node int
	Step int
}

// ResizeEvent schedules an elastic world-size change at a step (0-based):
// a positive Delta grows the job by that many ranks (placed incrementally
// by core.ExpandMap), a negative Delta releases that many of the
// highest-numbered ranks (core.ShrinkMap). Resizes apply before any
// failure scheduled for the same step.
type ResizeEvent struct {
	Step  int
	Delta int
}

// InjectionPlan is a deterministic schedule for one supervised run:
// individual rank crashes, correlated whole-node losses, and elastic
// grow/shrink requests.
type InjectionPlan struct {
	Failures     []Failure
	NodeFailures []NodeFailure
	Resizes      []ResizeEvent
}

// Empty reports whether the plan injects nothing.
func (p *InjectionPlan) Empty() bool {
	return p == nil || (len(p.Failures) == 0 && len(p.NodeFailures) == 0 && len(p.Resizes) == 0)
}

// Normalize sorts all schedules by (Step, Rank) / (Step, Node) /
// (Step, Delta) and drops exact duplicates, so a plan applies identically
// regardless of the order events were declared in.
func (p *InjectionPlan) Normalize() {
	sort.Slice(p.Failures, func(i, j int) bool {
		if p.Failures[i].Step != p.Failures[j].Step {
			return p.Failures[i].Step < p.Failures[j].Step
		}
		return p.Failures[i].Rank < p.Failures[j].Rank
	})
	p.Failures = dedupeFailures(p.Failures)
	sort.Slice(p.NodeFailures, func(i, j int) bool {
		if p.NodeFailures[i].Step != p.NodeFailures[j].Step {
			return p.NodeFailures[i].Step < p.NodeFailures[j].Step
		}
		return p.NodeFailures[i].Node < p.NodeFailures[j].Node
	})
	p.NodeFailures = dedupeNodeFailures(p.NodeFailures)
	sort.Slice(p.Resizes, func(i, j int) bool {
		if p.Resizes[i].Step != p.Resizes[j].Step {
			return p.Resizes[i].Step < p.Resizes[j].Step
		}
		return p.Resizes[i].Delta < p.Resizes[j].Delta
	})
	p.Resizes = dedupeResizes(p.Resizes)
}

func dedupeResizes(rs []ResizeEvent) []ResizeEvent {
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || r != rs[i-1] {
			out = append(out, r)
		}
	}
	return out
}

func dedupeFailures(fs []Failure) []Failure {
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

func dedupeNodeFailures(fs []NodeFailure) []NodeFailure {
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// CrashAtStep builds the simplest schedule: the given ranks crash at the
// given step.
func CrashAtStep(step int, ranks ...int) []Failure {
	out := make([]Failure, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, Failure{Rank: r, Step: step})
	}
	return out
}

// MTBFSchedule draws, for each of `ranks` processes, an exponential
// time-to-first-failure with the given mean (in steps) from a seeded
// source, and schedules a crash for every rank whose draw lands inside
// the run. The result is deterministic for a given (seed, ranks, steps,
// mtbf) tuple and sorted by (Step, Rank).
func MTBFSchedule(seed int64, ranks, steps int, mtbfSteps float64) ([]Failure, error) {
	if ranks <= 0 || steps <= 0 {
		return nil, fmt.Errorf("orte: non-positive ranks/steps (%d, %d)", ranks, steps)
	}
	if mtbfSteps <= 0 {
		return nil, fmt.Errorf("orte: non-positive MTBF %v", mtbfSteps)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Failure
	for r := 0; r < ranks; r++ {
		t := rng.ExpFloat64() * mtbfSteps
		if s := int(t); s < steps {
			out = append(out, Failure{Rank: r, Step: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Rank < out[j].Rank
	})
	return out, nil
}

// NodeMTBFSchedule draws, for each node of the cluster, an exponential
// time-to-first-failure from a seeded source and schedules a whole-node
// loss for every node whose draw lands inside the run. The mean
// time-to-failure of node n is mtbfSteps divided by the cluster fault
// model's Risk(n) — riskier nodes fail sooner — so the schedule exercises
// exactly the failure statistics that proactive placement and spare
// selection plan against. A cluster without a fault model uses uniform
// unit risk. Deterministic for a given (seed, cluster, steps, mtbf) tuple
// and sorted by (Step, Node); at most one failure per node.
func NodeMTBFSchedule(seed int64, c *cluster.Cluster, steps int, mtbfSteps float64) ([]NodeFailure, error) {
	if c == nil || c.NumNodes() == 0 || steps <= 0 {
		return nil, fmt.Errorf("orte: empty cluster or non-positive steps")
	}
	if mtbfSteps <= 0 {
		return nil, fmt.Errorf("orte: non-positive MTBF %v", mtbfSteps)
	}
	rng := rand.New(rand.NewSource(seed))
	var out []NodeFailure
	for n := 0; n < c.NumNodes(); n++ {
		t := rng.ExpFloat64() * mtbfSteps / c.Faults.Risk(n)
		if s := int(t); s < steps {
			out = append(out, NodeFailure{Node: n, Step: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Step != out[j].Step {
			return out[i].Step < out[j].Step
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

// CorrelatedNodeLoss expands a whole-node loss into the rank crashes it
// implies under the given map: every rank placed on the node dies at the
// step. Useful for feeding LaunchMonitored, which only understands rank
// failures; the Supervisor takes NodeFailure directly.
func CorrelatedNodeLoss(m *core.Map, node, step int) []Failure {
	var out []Failure
	for i := range m.Placements {
		if m.Placements[i].Node == node {
			out = append(out, Failure{Rank: m.Placements[i].Rank, Step: step})
		}
	}
	return out
}

// RandomNodeLoss picks one node and one step uniformly from a seeded
// source — a deterministic "some node will die at some point" schedule.
func RandomNodeLoss(seed int64, nodes, steps int) (NodeFailure, error) {
	if nodes <= 0 || steps <= 0 {
		return NodeFailure{}, fmt.Errorf("orte: non-positive nodes/steps (%d, %d)", nodes, steps)
	}
	rng := rand.New(rand.NewSource(seed))
	return NodeFailure{Node: rng.Intn(nodes), Step: rng.Intn(steps)}, nil
}
