package lama_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"lama"
)

// TestEndToEndPipeline drives the whole public API the way the README
// quickstart does: cluster -> map -> bind -> launch -> evaluate.
func TestEndToEndPipeline(t *testing.T) {
	spec, ok := lama.Preset("nehalem-ep")
	if !ok {
		t.Fatal("preset missing")
	}
	c := lama.Homogeneous(4, spec)

	mapper, err := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(c); err != nil {
		t.Fatal(err)
	}

	plan, err := lama.Bind(c, m, lama.BindSpecific, lama.LevelCore)
	if err != nil {
		t.Fatal(err)
	}
	job, err := lama.NewRuntime(c).Launch(m, plan, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.CheckEnforcement(); err != nil {
		t.Fatal(err)
	}

	model := lama.NewModel(lama.NewFlatNetwork())
	rep, err := model.Evaluate(c, m, lama.GTC(64, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTime <= 0 {
		t.Fatal("no cost computed")
	}

	s := lama.Summarize(c, m)
	if s.Ranks != 64 || s.NodesUsed != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestResourceManagerFlow allocates from a pool and maps into the
// restricted grant.
func TestResourceManagerFlow(t *testing.T) {
	spec, _ := lama.Preset("nehalem-ep")
	rm := lama.NewResourceManager(lama.Homogeneous(2, spec))
	alloc, err := rm.Alloc(lama.AllocCoreGranular, 10)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := lama.NewMapper(alloc.Granted, lama.MustParseLayout("csbnh"), lama.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Oversubscribed() {
		t.Fatal("10 ranks on 10 granted dual-thread cores")
	}
	if err := rm.Release(alloc); err != nil {
		t.Fatal(err)
	}
}

// TestMpirunFacade exercises ParseArgs/Execute and the error surface.
func TestMpirunFacade(t *testing.T) {
	spec, _ := lama.Preset("fig2")
	c := lama.Homogeneous(2, spec)
	req, err := lama.ParseArgs([]string{"-np", "24", "--map-by", "socket", "--bind-to", "core"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lama.Execute(context.Background(), req, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Map.NumRanks() != 24 {
		t.Fatal("wrong rank count")
	}
	if layout, ok := lama.ShortcutLayout("socket"); !ok || layout != "scbnh" {
		t.Fatalf("shortcut = %q", layout)
	}
	req2, _ := lama.ParseArgs([]string{"-np", "25", "--map-by", "socket"})
	if _, err := lama.Execute(context.Background(), req2, c); !errors.Is(err, lama.ErrOversubscribe) {
		t.Fatalf("want ErrOversubscribe, got %v", err)
	}
}

// TestBaselineFacade checks the re-exported baseline and torus mappers.
func TestBaselineFacade(t *testing.T) {
	spec, _ := lama.Preset("bgp-node")
	d := lama.TorusDims{X: 2, Y: 2, Z: 2}
	c := lama.Homogeneous(d.Size(), spec)
	for name, f := range map[string]func() (*lama.Map, error){
		"byslot":  func() (*lama.Map, error) { return lama.BySlot(c, 16) },
		"bynode":  func() (*lama.Map, error) { return lama.ByNode(c, 16) },
		"pack":    func() (*lama.Map, error) { return lama.PackAt(c, lama.LevelSocket, 16) },
		"scatter": func() (*lama.Map, error) { return lama.ScatterAt(c, lama.LevelSocket, 16) },
		"random":  func() (*lama.Map, error) { return lama.RandomMap(c, 3, 16) },
		"torus":   func() (*lama.Map, error) { return lama.MapTorus(c, d, "xyzt", 16) },
	} {
		m, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(lama.TorusOrders()) != 24 {
		t.Fatal("torus orders")
	}
}

// TestHostfileAndRankfileFacade round-trips the text formats.
func TestHostfileAndRankfileFacade(t *testing.T) {
	def, _ := lama.Preset("bgp-node")
	c, err := lama.ParseHostfile("a slots=4 spec=fig2\nb slots=4 spec=fig2", def)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := lama.ParseRankfile("rank 0=a slot=0\nrank 1=b slot=0:1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := lama.ApplyRankfile(rf, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRanks() != 2 || m.Placements[1].NodeName != "b" {
		t.Fatal("rankfile apply")
	}
	set, err := lama.ParseCPUSet("0-2,5")
	if err != nil || set.Count() != 4 {
		t.Fatal("cpuset facade")
	}
	sp, err := lama.ParseSpec("2:4:2")
	if err != nil || lama.NewTopology(sp).NumPUs() != 16 {
		t.Fatal("spec facade")
	}
	if len(lama.PresetNames()) < 5 {
		t.Fatal("presets facade")
	}
	if !strings.Contains(c.Summary(), "2 nodes") {
		t.Fatal("summary facade")
	}
}

// TestIterOrderFacade checks the exported iteration orders.
func TestIterOrderFacade(t *testing.T) {
	if got := lama.SequentialOrder(3); got[0] != 0 || got[2] != 2 {
		t.Fatal("sequential")
	}
	if got := lama.ReverseOrder(3); got[0] != 2 || got[2] != 0 {
		t.Fatal("reverse")
	}
	spec, _ := lama.Preset("fig2")
	c := lama.Homogeneous(1, spec)
	mapper, err := lama.NewMapper(c, lama.MustParseLayout("scbnh"), lama.Options{
		IterOrder: map[lama.Level]lama.IterOrder{lama.LevelSocket: lama.ReverseOrder},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Placements[0].PU() != 6 {
		t.Fatalf("reverse socket order: PU = %d, want 6 (socket 1)", m.Placements[0].PU())
	}
}

// TestExtensionFacade exercises the plane, treematch, and appsim exports.
func TestExtensionFacade(t *testing.T) {
	spec, _ := lama.Preset("fig2")
	c := lama.Homogeneous(2, spec)
	np := 24
	tm := lama.Ring(np, 1<<20)

	plane, err := lama.PlaneMap(c, 4, np)
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.Validate(c); err != nil {
		t.Fatal(err)
	}

	tmatch, err := lama.TreeMatchMap(c, tm, np)
	if err != nil {
		t.Fatal(err)
	}
	if err := tmatch.Validate(c); err != nil {
		t.Fatal(err)
	}

	model := lama.NewModel(lama.NewFlatNetwork())
	cfg := lama.AppConfig{ComputeUs: 100, Iterations: 50}
	resA, err := lama.SimulateApp(c, tmatch, model, tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := lama.RandomMap(c, 9, np)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := lama.SimulateApp(c, rnd, model, tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := lama.Speedup(resB, resA); s < 1 {
		t.Fatalf("traffic-aware mapping should not lose to random on a ring: %v", s)
	}
}

// TestBindingReportFacade checks the Open MPI-style report renders through
// the public API.
func TestBindingReportFacade(t *testing.T) {
	spec, _ := lama.Preset("fig2")
	c := lama.Homogeneous(1, spec)
	req, err := lama.ParseArgs([]string{"-np", "2", "--map-by", "socket",
		"--bind-to", "core", "--report-bindings"})
	if err != nil {
		t.Fatal(err)
	}
	if !req.ReportBindings {
		t.Fatal("flag lost")
	}
	res, err := lama.Execute(context.Background(), req, c)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Plan.Render(c)
	if !strings.Contains(out, "[BB/../..]") {
		t.Fatalf("report:\n%s", out)
	}
}

// TestSchedulerFacade drives the batch-queue simulation through the
// public API.
func TestSchedulerFacade(t *testing.T) {
	spec, _ := lama.Preset("nehalem-ep")
	mgr := lama.NewResourceManager(lama.Homogeneous(2, spec))
	res, err := mgr.Schedule(lama.SchedBackfill, []lama.JobSpec{
		{ID: 0, Cores: 16, Duration: 5},
		{ID: 1, Cores: 4, Duration: 1, Arrival: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	if res.Outcomes[1].Start != 5 {
		t.Fatalf("job 1 start = %v (must wait for the full-pool job)", res.Outcomes[1].Start)
	}
}

// TestFacadeCoverage sweeps the remaining thin wrappers so regressions in
// re-export plumbing are caught.
func TestFacadeCoverage(t *testing.T) {
	// Synthetic specs.
	sp, err := lama.ParseSynthetic("socket:2 core:3 pu:2")
	if err != nil || sp.TotalPUs() != 12 {
		t.Fatalf("synthetic: %v %+v", err, sp)
	}
	if lama.FormatSynthetic(sp) == "" {
		t.Fatal("format synthetic")
	}

	c := lama.Homogeneous(2, sp)

	// Traffic matrix I/O.
	tm := lama.Stencil3D(2, 3, 2, 1000, true)
	back, err := lama.ParseTrafficMatrix(lama.FormatTrafficMatrix(tm))
	if err != nil || back.Ranks() != tm.Ranks() {
		t.Fatalf("traffic io: %v", err)
	}

	// NAS proxies and helpers.
	for _, gen := range []func(int, float64) *lama.TrafficMatrix{
		lama.NASCG, lama.NASMG, lama.NASFT, lama.NASLU, lama.AllToAll, lama.Ring,
	} {
		if m := gen(12, 10); m.Total() <= 0 {
			t.Fatal("empty pattern")
		}
	}
	if px, py := lama.Grid2D(12); px*py != 12 {
		t.Fatal("grid2d")
	}

	// Mapping + everything downstream.
	mapper, err := lama.NewMapper(c, lama.MustParseLayout("csbnh"), lama.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapper.Map(24)
	if err != nil {
		t.Fatal(err)
	}
	_, events, err := mapper.MapTraced(24, 3)
	if err != nil || len(events) != 3 || events[0].Action != lama.TraceMapped {
		t.Fatalf("traced: %v %v", err, events)
	}

	// Map JSON + rankfile export.
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lama.DecodeMap(data, c); err != nil {
		t.Fatal(err)
	}
	rf, err := lama.RankfileFromMap(m)
	if err != nil {
		t.Fatal(err)
	}
	if lama.FormatRankfile(rf) == "" {
		t.Fatal("format rankfile")
	}

	// Collectives, hierarchical included.
	model := lama.NewModel(lama.NewTorusNetwork(lama.TorusDims{X: 2, Y: 1, Z: 1}))
	for _, op := range []lama.CollOp{lama.Broadcast, lama.AllreduceRing, lama.Barrier} {
		if _, err := lama.RunCollective(op, c, m, model, 1024); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	if _, err := lama.RunHierarchicalCollective(lama.AllreduceRD, c, m, model, 1024); err != nil {
		t.Fatal(err)
	}

	// Monitored launch.
	plan, err := lama.Bind(c, m, lama.BindSpecific, lama.LevelPU)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := lama.NewRuntime(c).LaunchMonitored(m, plan, 10, []lama.Fault{{Rank: 1, Step: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[1].State != lama.ProcFailed {
		t.Fatalf("state = %v", rep.Outcomes[1].State)
	}

	// Summaries and metrics.
	if s := lama.Summarize(c, m); s.Ranks != 24 {
		t.Fatal("summary")
	}
}
