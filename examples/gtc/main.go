// GTC study: the paper's §II cites a fusion code (GTC) whose tuned
// process placement improved performance up to ~30%. This example
// reproduces the shape of that study in simulation: a GTC-like toroidal
// exchange is costed under several placements and networks, including
// torus link congestion.
package main

import (
	"fmt"
	"log"

	"lama"
)

func main() {
	spec, _ := lama.Preset("nehalem-ep")
	nodes := 8
	cluster := lama.Homogeneous(nodes, spec)
	np := 64
	traffic := lama.GTC(np, 1<<20)

	networks := []lama.Network{
		lama.NewFlatNetwork(),
		lama.NewFatTreeNetwork(4),
		lama.NewTorusNetwork(lama.TorusDims{X: 4, Y: 2, Z: 1}),
	}
	placements := []struct {
		name   string
		layout string
	}{
		{"by-slot (default)", "csbnh"},
		{"by-node", "ncsbh"},
		{"by-socket", "scbnh"},
		{"tuned (pack threads)", "hcsbn"},
	}

	for _, net := range networks {
		model := lama.NewModel(net)
		fmt.Printf("network %s:\n", net.Name())
		var base float64
		for i, pl := range placements {
			mapper, err := lama.NewMapper(cluster, lama.MustParseLayout(pl.layout), lama.Options{})
			if err != nil {
				log.Fatal(err)
			}
			m, err := mapper.Map(np)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := model.Evaluate(cluster, m, traffic)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = rep.TotalTime
			}
			extra := ""
			if rep.MaxLinkLoad > 0 {
				extra = fmt.Sprintf("  max-link %.1f MB", rep.MaxLinkLoad/1e6)
			}
			fmt.Printf("  %-22s %10.3f ms  inter-node %6.1f MB  vs default %+6.1f%%%s\n",
				pl.name, rep.TotalTime/1000, rep.InterBytes/1e6,
				(base-rep.TotalTime)/base*100, extra)
		}
		fmt.Println()
	}
}
