// Heterogeneous systems (paper §III-A, §IV-B): a core-granular allocation
// from a resource manager turns a homogeneous pool into a heterogeneous
// view, and the LAMA's maximal tree handles it: coordinates that do not
// exist (or are disallowed) on a node are simply skipped.
package main

import (
	"fmt"
	"log"

	"lama"
)

func main() {
	// A pool of four identical dual-socket nodes, managed by a scheduler.
	spec, _ := lama.Preset("nehalem-ep")
	pool := lama.Homogeneous(4, spec)
	rm := lama.NewResourceManager(pool)

	// Another job already holds 5 cores; our job asks for 12 more at core
	// granularity, so it gets parts of several nodes — the paper's "half
	// the cores of node A and half the cores of node B".
	if _, err := rm.Alloc(lama.AllocCoreGranular, 5); err != nil {
		log.Fatal(err)
	}
	alloc, err := rm.Alloc(lama.AllocCoreGranular, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("our allocation (restricted views of the pool nodes):")
	fmt.Print(alloc.Granted.Summary())

	// Add a genuinely different machine to make the system heterogeneous
	// in hardware, not just in restrictions.
	old, _ := lama.Preset("bgp-node")
	oldNode := lama.FromSpecs(old).Nodes[0]
	oldNode.Name = "old0"
	alloc.Granted.Nodes = append(alloc.Granted.Nodes, oldNode)
	fmt.Printf("\nwith the old node attached: homogeneous=%v\n\n", alloc.Granted.Homogeneous())

	// Map one rank per available core across the mixed system. The
	// maximal tree's socket width is 2 even though the old node has one
	// socket; its missing coordinates are skipped, not errors.
	usable := 0
	for _, n := range alloc.Granted.Nodes {
		usable += n.Topo.NumUsablePUs()
	}
	layout := lama.MustParseLayout("scn") // cores as leaves, PU level pruned
	mapper, err := lama.NewMapper(alloc.Granted, layout, lama.Options{})
	if err != nil {
		log.Fatal(err)
	}
	np := usable / 2 // one rank per dual-thread core, one per single-thread core floor
	m, err := mapper.Map(np)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped %d ranks with layout %s (PU level pruned -> core leaves):\n", np, layout)
	for node, ranks := range m.RanksByNode() {
		fmt.Printf("  %s: %d ranks\n", alloc.Granted.Node(node).Name, len(ranks))
	}

	s := lama.Summarize(alloc.Granted, m)
	fmt.Printf("\nsummary: %d ranks on %d nodes (%d sockets), oversubscribed=%v\n",
		s.Ranks, s.NodesUsed, s.SocketsUsed, s.Oversubscribed)
}
