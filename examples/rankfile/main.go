// Rankfile (Level 4, paper §V): fully irregular placements that no regular
// pattern can express — here, a job whose rank 0 (an I/O-heavy master)
// owns a whole socket while workers share the rest, launched and verified
// in the simulated runtime.
package main

import (
	"fmt"
	"log"

	"lama"
)

const rankfileText = `
# master: all of node0 socket 0 (cores 0-2)
rank 0=node0 slot=0:0-2
# workers: one core each on the remaining resources
rank 1=node0 slot=1:0
rank 2=node0 slot=1:1
rank 3=node0 slot=1:2
rank 4=node1 slot=0:0
rank 5=node1 slot=0:1
rank 6=node1 slot=1:0-1
rank 7=node1 slot=10-11
`

func main() {
	spec, _ := lama.Preset("fig2")
	cluster := lama.Homogeneous(2, spec)

	rf, err := lama.ParseRankfile(rankfileText)
	if err != nil {
		log.Fatal(err)
	}
	m, err := lama.ApplyRankfile(rf, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("irregular mapping:")
	fmt.Print(m.RenderByNode(cluster))

	// Bind each rank to exactly its claimed PUs and launch.
	plan, err := lama.Bind(cluster, m, lama.BindSpecific, lama.LevelPU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbinding widths:")
	for _, b := range plan.Bindings {
		fmt.Printf("  rank %d: %d PUs (%s)\n", b.Rank, b.Width, b.CPUs)
	}

	job, err := lama.NewRuntime(cluster).Launch(m, plan, 50)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.CheckEnforcement(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlaunched %d ranks; master roamed %d PUs, worker 1 roamed %d; enforcement OK\n",
		len(job.Procs), job.Procs[0].DistinctPUs(), job.Procs[1].DistinctPUs())
}
