// Collectives and monitoring: how placement changes MPI collective times
// (rounds synchronize on their slowest exchange), and what the run-time's
// monitoring role does when a rank dies mid-run.
package main

import (
	"fmt"
	"log"

	"lama"
)

func main() {
	spec, _ := lama.Preset("nehalem-ep")
	cluster := lama.Homogeneous(8, spec)
	model := lama.NewModel(lama.NewFlatNetwork())
	np := 16 // fits one node when packed

	fmt.Println("collective completion (1 MiB, np=16 on 8 nodes):")
	fmt.Printf("%-16s %12s %12s\n", "collective", "packed (ms)", "cyclic (ms)")
	for _, op := range []lama.CollOp{lama.Broadcast, lama.AllreduceRD, lama.AllreduceRing, lama.AlltoallOp} {
		times := make([]float64, 2)
		for i, layout := range []string{"csbnh", "ncsbh"} {
			mapper, err := lama.NewMapper(cluster, lama.MustParseLayout(layout), lama.Options{})
			if err != nil {
				log.Fatal(err)
			}
			m, err := mapper.Map(np)
			if err != nil {
				log.Fatal(err)
			}
			res, err := lama.RunCollective(op, cluster, m, model, 1<<20)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = res.TimeUs / 1000
		}
		fmt.Printf("%-16s %12.3f %12.3f\n", op, times[0], times[1])
	}

	// Monitoring: kill rank 3 at step 10 of a 100-step run and watch the
	// abort propagate over the daemons' routed tree.
	mapper, _ := lama.NewMapper(cluster, lama.MustParseLayout("ncsbh"), lama.Options{})
	m, err := mapper.Map(32)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := lama.Bind(cluster, m, lama.BindSpecific, lama.LevelPU)
	if err != nil {
		log.Fatal(err)
	}
	_, rep, err := lama.NewRuntime(cluster).LaunchMonitored(m, plan, 100,
		[]lama.Fault{{Rank: 3, Step: 10}})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, o := range rep.Outcomes {
		counts[o.State.String()]++
	}
	fmt.Printf("\nfault injection: rank %d died at step %d; abort reached the last daemon %d steps later\n",
		rep.FirstFailure.Rank, rep.FirstFailure.Step, rep.DetectionSteps)
	fmt.Printf("outcomes: %d failed, %d killed, %d done\n",
		counts["failed"], counts["killed"], counts["done"])

	// Launch-protocol comparison for the same machine counts.
	fmt.Println("\ndaemon spawn at scale (50 us/message):")
	for _, n := range []int{64, 1024} {
		lin, _ := lama.SimulateSpawn(n, lama.LinearSpawn, 50)
		bin, _ := lama.SimulateSpawn(n, lama.BinomialSpawn, 50)
		fmt.Printf("  %4d nodes: linear %.2f ms, binomial %.2f ms\n",
			n, lin.TimeUs/1000, bin.TimeUs/1000)
	}
}
