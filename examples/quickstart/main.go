// Quickstart: the full map -> bind -> launch pipeline on the paper's
// Figure 2 scenario — 24 processes, layout "scbnh", two nodes.
package main

import (
	"fmt"
	"log"

	"lama"
)

func main() {
	// A cluster of two nodes, each 2 sockets x 3 cores x 2 hardware
	// threads (the reconstructed Figure 2 node).
	spec, ok := lama.Preset("fig2")
	if !ok {
		log.Fatal("preset missing")
	}
	cluster := lama.Homogeneous(2, spec)
	fmt.Print(cluster.Summary())

	// 1) Mapping (paper §III-A): plan rank -> processing unit with the
	// "scbnh" layout — scatter across sockets, then cores, fill the node,
	// move to the next node, and only then use second hardware threads.
	layout := lama.MustParseLayout("scbnh")
	mapper, err := lama.NewMapper(cluster, layout, lama.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := mapper.Map(24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 2 mapping:")
	fmt.Print(m.RenderByNode(cluster))

	// 2) Binding (paper §III-B): give each rank a specific core.
	plan, err := lama.Bind(cluster, m, lama.BindSpecific, lama.LevelCore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbinding width at core level: %d PUs per rank\n", plan.Bindings[0].Width)

	// 3) Launch: run the job in the simulated runtime and verify that no
	// process ever escaped its binding.
	job, err := lama.NewRuntime(cluster).Launch(m, plan, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := job.CheckEnforcement(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("launched %d ranks on %d daemons; max PU occupancy %d; enforcement OK\n",
		len(job.Procs), len(job.Daemons), job.MaxOccupancy())
}
