// Toolchain: the full life of a job — the batch scheduler grants a
// core-granular allocation (possibly fragmented across nodes), the LAMA
// maps onto exactly what was granted, binding freezes the plan, and the
// cost model prices the fragmentation.
package main

import (
	"fmt"
	"log"

	"lama"
)

func main() {
	spec, _ := lama.Preset("nehalem-ep") // 8 cores per node
	pool := lama.Homogeneous(4, spec)
	rm := lama.NewResourceManager(pool)

	// First, queue metrics: the same workload under FIFO and backfill.
	workload := []lama.JobSpec{
		{ID: 0, Cores: 24, Duration: 10},
		{ID: 1, Cores: 20, Duration: 4, Arrival: 1},
		{ID: 2, Cores: 6, Duration: 2, Arrival: 1},
		{ID: 3, Cores: 2, Duration: 2, Arrival: 2},
	}
	for _, policy := range []lama.SchedPolicy{lama.SchedFIFO, lama.SchedBackfill} {
		mgr := lama.NewResourceManager(lama.Homogeneous(4, spec))
		res, err := mgr.Schedule(policy, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s makespan %5.1f  avg wait %5.2f  avg nodes/job %.2f\n",
			policy, res.Makespan, res.AvgWait, res.AvgSpan)
	}

	// Now one concrete job: another tenant holds 12 cores, so our 16-core
	// request is granted 4 cores on node1 plus 8+4 on nodes 2-3.
	if _, err := rm.Alloc(lama.AllocCoreGranular, 12); err != nil {
		log.Fatal(err)
	}
	alloc, err := rm.Alloc(lama.AllocCoreGranular, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nour grant spans %d nodes:\n%s", alloc.Granted.NumNodes(), alloc.Granted.Summary())

	// Map the job onto the grant and price a ring exchange on it,
	// comparing against what a whole-node grant would have cost.
	model := lama.NewModel(lama.NewFatTreeNetwork(4))
	traffic := lama.Ring(16, 1<<20)

	cost := func(c *lama.Cluster) float64 {
		mapper, err := lama.NewMapper(c, lama.MustParseLayout("csbnh"), lama.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m, err := mapper.Map(16)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := model.Evaluate(c, m, traffic)
		if err != nil {
			log.Fatal(err)
		}
		return rep.TotalTime
	}
	fragmented := cost(alloc.Granted)
	ideal := cost(lama.Homogeneous(1, spec)) // 16 PUs: one whole dual-socket node
	fmt.Printf("\nring comm cost on the fragmented grant: %.3f ms\n", fragmented/1000)
	fmt.Printf("ring comm cost on one whole node:       %.3f ms (%.1fx cheaper)\n",
		ideal/1000, fragmented/ideal)

	// Freeze the fragmented plan to a rankfile so the exact placement can
	// be reproduced later without re-running the mapper.
	mapper, _ := lama.NewMapper(alloc.Granted, lama.MustParseLayout("csbnh"), lama.Options{})
	m, err := mapper.Map(16)
	if err != nil {
		log.Fatal(err)
	}
	rf, err := lama.RankfileFromMap(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrozen rankfile (first lines):\n")
	text := lama.FormatRankfile(rf)
	for i, line := 0, 0; i < len(text) && line < 4; i++ {
		fmt.Print(string(text[i]))
		if text[i] == '\n' {
			line++
		}
	}
}
