// Stencil sweep: the domain-expert workflow the paper argues for (§I) —
// experiment with process layouts to find the one that minimizes the
// communication cost of your application. Here: a periodic 2-D halo
// exchange on 64 ranks over 8 NUMA nodes, costed on a fat-tree network.
package main

import (
	"fmt"
	"log"
	"sort"

	"lama"
)

func main() {
	spec, _ := lama.Preset("nehalem-ep")
	cluster := lama.Homogeneous(8, spec)
	np := 64
	px, py := lama.Grid2D(np)
	traffic := lama.Stencil2D(px, py, 1<<20, true) // 1 MiB halos
	model := lama.NewModel(lama.NewFatTreeNetwork(4))

	layouts := []string{
		"csbnh", // by-slot (pack)
		"ncsbh", // by-node (cycle)
		"scbnh", // scatter sockets within node
		"snchb", // scatter sockets across the whole machine first
		"hcsbn", // pack hardware threads
		"cnsbh", // cores then nodes
	}
	type result struct {
		layout string
		report *lama.Report
	}
	var results []result
	for _, text := range layouts {
		mapper, err := lama.NewMapper(cluster, lama.MustParseLayout(text), lama.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m, err := mapper.Map(np)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := model.Evaluate(cluster, m, traffic)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{text, rep})
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].report.TotalTime < results[j].report.TotalTime
	})

	fmt.Printf("2-D %dx%d stencil, np=%d, 8 nodes, fat-tree(4):\n\n", px, py, np)
	fmt.Printf("%-8s %14s %14s %12s\n", "layout", "total (ms)", "inter-node MB", "vs worst")
	worst := results[len(results)-1].report.TotalTime
	for _, r := range results {
		fmt.Printf("%-8s %14.3f %14.1f %11.1f%%\n",
			r.layout,
			r.report.TotalTime/1000,
			r.report.InterBytes/1e6,
			(worst-r.report.TotalTime)/worst*100)
	}
	fmt.Printf("\nbest layout for this stencil: %s\n", results[0].layout)
}
