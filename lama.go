// Package lama is a Go reproduction of the Locality-Aware Mapping
// Algorithm (LAMA) from "Locality-Aware Parallel Process Mapping for
// Multi-Core HPC Systems" (Hursey, Squyres, Dontje; IEEE CLUSTER 2011),
// together with the simulated substrate it needs: hardware topologies,
// clusters, resource management, binding, launch, baseline mappers, and a
// communication-cost simulator.
//
// The typical flow mirrors the paper's §III:
//
//	spec, _ := lama.Preset("nehalem-ep")
//	cluster := lama.Homogeneous(4, spec)             // the allocation
//	layout := lama.MustParseLayout("scbnh")          // the process layout
//	mapper, _ := lama.NewMapper(cluster, layout, lama.Options{})
//	m, _ := mapper.Map(64)                           // 1) mapping
//	plan, _ := lama.Bind(cluster, m, lama.BindSpecific, lama.LevelCore)
//	job, _ := lama.NewRuntime(cluster).Launch(m, plan, 100) // 2) binding+launch
//
// Mapping quality can be evaluated against synthetic application traffic:
//
//	model := lama.NewModel(lama.NewFlatNetwork())
//	report, _ := model.Evaluate(cluster, m, lama.GTC(64, 1<<20))
//
// The subpackages under internal/ hold the implementations; this package
// re-exports the stable API surface.
package lama

import (
	"context"
	"lama/internal/appsim"
	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/coll"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/mpirun"
	"lama/internal/msgsim"
	"lama/internal/netsim"
	"lama/internal/orte"
	"lama/internal/place"
	_ "lama/internal/place/all" // link every built-in placement policy
	"lama/internal/rankfile"
	"lama/internal/reorder"
	"lama/internal/rm"
	"lama/internal/torus"
)

// ---- Hardware topologies (paper Table I substrate) ----

// Level identifies a hardware resource level (node, board, socket, NUMA,
// caches, core, hardware thread).
type Level = hw.Level

// Resource levels in canonical containment order.
const (
	LevelMachine = hw.LevelMachine
	LevelBoard   = hw.LevelBoard
	LevelSocket  = hw.LevelSocket
	LevelNUMA    = hw.LevelNUMA
	LevelL3      = hw.LevelL3
	LevelL2      = hw.LevelL2
	LevelL1      = hw.LevelL1
	LevelCore    = hw.LevelCore
	LevelPU      = hw.LevelPU
)

// Spec declares a regular single-node topology; Topology is the built tree.
type (
	Spec     = hw.Spec
	Topology = hw.Topology
	Object   = hw.Object
	CPUSet   = hw.CPUSet
)

// NewTopology builds a topology from a spec.
func NewTopology(sp Spec) *Topology { return hw.New(sp) }

// Preset returns a named vendor-like node spec (e.g. "nehalem-ep",
// "magny-cours", "power7", "bgp-node").
func Preset(name string) (Spec, bool) { return hw.Preset(name) }

// PresetNames lists the available presets.
func PresetNames() []string { return hw.PresetNames() }

// ParseSpec parses a preset name, "s:c:h", or the 8-width colon form.
func ParseSpec(text string) (Spec, error) { return hw.ParseSpec(text) }

// ParseCPUSet parses hwloc list syntax such as "0-3,8".
func ParseCPUSet(text string) (*CPUSet, error) { return hw.ParseCPUSet(text) }

// ParseSynthetic parses an hwloc-style synthetic topology description
// such as "socket:2 core:4 pu:2".
func ParseSynthetic(text string) (Spec, error) { return hw.ParseSynthetic(text) }

// FormatSynthetic renders a spec in hwloc synthetic form.
func FormatSynthetic(sp Spec) string { return hw.FormatSynthetic(sp) }

// ---- Clusters and resource management (§III-A) ----

// Cluster is an ordered set of compute nodes; ClusterNode is one node.
type (
	Cluster     = cluster.Cluster
	ClusterNode = cluster.Node
)

// Homogeneous builds a cluster of n identical nodes.
func Homogeneous(n int, sp Spec) *Cluster { return cluster.Homogeneous(n, sp) }

// FromSpecs builds a heterogeneous cluster, one node per spec.
func FromSpecs(specs ...Spec) *Cluster { return cluster.FromSpecs(specs...) }

// ParseHostfile builds a cluster from hostfile text.
func ParseHostfile(text string, def Spec) (*Cluster, error) {
	return cluster.ParseHostfile(text, def)
}

// ResourceManager simulates a batch scheduler granting node- or
// core-granular allocations.
type (
	ResourceManager = rm.Manager
	Allocation      = rm.Allocation
	AllocPolicy     = rm.Policy
)

// Allocation policies.
const (
	AllocWholeNode    = rm.WholeNode
	AllocCoreGranular = rm.CoreGranular
)

// NewResourceManager creates a manager over a node pool.
func NewResourceManager(pool *Cluster) *ResourceManager { return rm.NewManager(pool) }

// ---- The LAMA (§IV) ----

// Layout is a parsed process layout; Mapper plans placements; Map is the
// resulting plan.
type (
	Layout    = core.Layout
	Mapper    = core.Mapper
	Map       = core.Map
	Placement = core.Placement
	Options   = core.Options
	IterOrder = core.IterOrder
)

// Mapping errors.
var (
	ErrOversubscribe = core.ErrOversubscribe
	ErrNoResources   = core.ErrNoResources
)

// ParseLayout parses a layout string such as "scbnh".
func ParseLayout(text string) (Layout, error) { return core.ParseLayout(text) }

// MustParseLayout is ParseLayout that panics on error.
func MustParseLayout(text string) Layout { return core.MustParseLayout(text) }

// NewMapper builds a mapper for a cluster, layout, and options.
func NewMapper(c *Cluster, l Layout, o Options) (*Mapper, error) {
	return core.NewMapper(c, l, o)
}

// SweepLayouts maps np ranks with every layout concurrently (bounded
// worker pool, per-worker mapper reuse); results are in layout order.
func SweepLayouts(ctx context.Context, c *Cluster, layouts []Layout, np int, o Options, workers int) ([]*Map, error) {
	return core.SweepLayouts(ctx, c, layouts, np, o, workers)
}

// PlacedRanks returns the process-wide count of rank placements planned so
// far, for throughput (placements/sec) reporting.
func PlacedRanks() int64 { return core.PlacedRanks() }

// SequentialOrder and ReverseOrder are the built-in per-level iteration
// orders (paper Fig. 1 line 13 and §IV-A).
func SequentialOrder(width int) []int { return core.SequentialOrder(width) }

// ReverseOrder visits resources in descending index order.
func ReverseOrder(width int) []int { return core.ReverseOrder(width) }

// ---- Binding (§III-B) ----

// BindPolicy selects the binding restriction; BindPlan is the result.
type (
	BindPolicy = bind.Policy
	BindPlan   = bind.Plan
	Binding    = bind.Binding
)

// Binding policies.
const (
	BindNone     = bind.None
	BindLimited  = bind.Limited
	BindSpecific = bind.Specific
)

// Bind computes a binding plan from a map.
func Bind(c *Cluster, m *Map, p BindPolicy, level Level) (*BindPlan, error) {
	return bind.Compute(c, m, p, level)
}

// ---- Rankfiles and the mpirun interface (§V) ----

// Rankfile is a parsed irregular-placement file (Level 4).
type Rankfile = rankfile.File

// ParseRankfile parses rankfile text.
func ParseRankfile(text string) (*Rankfile, error) { return rankfile.Parse(text) }

// ApplyRankfile resolves a rankfile against a cluster.
func ApplyRankfile(f *Rankfile, c *Cluster) (*Map, error) { return rankfile.Apply(f, c) }

// LaunchRequest is a parsed mpirun-style command line; LaunchResult is the
// planned map plus binding plan.
type (
	LaunchRequest = mpirun.Request
	LaunchResult  = mpirun.Result
)

// ParseArgs parses an mpirun-style argument list (all four abstraction
// levels of §V).
func ParseArgs(args []string) (*LaunchRequest, error) { return mpirun.Parse(args) }

// Execute plans a request against a cluster. The context cancels the
// place/stage phases at their boundaries.
func Execute(ctx context.Context, req *LaunchRequest, c *Cluster) (*LaunchResult, error) {
	return mpirun.Execute(ctx, req, c)
}

// ShortcutLayout returns the Level 3 layout a Level 2 shortcut lowers to.
func ShortcutLayout(name string) (string, bool) { return mpirun.ShortcutLayout(name) }

// ---- Launch simulation ----

// Runtime launches mapped jobs; Job is a completed run; Process one rank.
type (
	Runtime = orte.Runtime
	Job     = orte.Job
	Process = orte.Process
)

// NewRuntime creates a launch runtime over a cluster.
func NewRuntime(c *Cluster) *Runtime { return orte.NewRuntime(c) }

// Fault injects the death of a rank at a step in a monitored launch;
// MonitorReport describes every rank's fate.
type (
	Fault         = orte.Failure
	MonitorReport = orte.MonitorReport
	ProcState     = orte.ProcState
)

// Process states reported by monitored launches.
const (
	ProcDone   = orte.Done
	ProcFailed = orte.Failed
	ProcKilled = orte.Killed
)

// ---- Placement policy registry ----

// Policy is one named placement strategy; PlaceRequest bundles every input
// any strategy may consume; PlaceStage is a composable post-pass (e.g.
// rank reordering) and PlacePipeline the place→stages execution path;
// PlaceJob pairs a policy with a request for cross-policy sweeps.
type (
	Policy        = place.Policy
	PlaceRequest  = place.Request
	PlaceStage    = place.Stage
	PlacePipeline = place.Pipeline
	PlaceJob      = place.Job
)

// RegisterPolicy adds a custom placement policy to the registry.
func RegisterPolicy(p Policy) { place.Register(p) }

// LookupPolicy resolves a registered policy by name.
func LookupPolicy(name string) (Policy, bool) { return place.Lookup(name) }

// PolicyNames lists the registered policies in registration order.
func PolicyNames() []string { return place.Names() }

// Place resolves a policy by name and runs it under the uniform
// instrumentation contract (see place.Run).
func Place(ctx context.Context, name string, req *PlaceRequest) (*Map, error) {
	return place.Place(ctx, name, req)
}

// PlaceSweep runs every job across a bounded worker pool; results are in
// job order (the policy-generic form of SweepLayouts).
func PlaceSweep(ctx context.Context, jobs []PlaceJob, workers int) ([]*Map, error) {
	return place.Sweep(ctx, jobs, workers)
}

// ReorderPass is the rank-reordering post-pass stage for PlacePipeline /
// LaunchRequest.Stages.
type ReorderPass = reorder.Pass

// ---- Baselines and torus mapping (§II comparators) ----

// BySlot, ByNode, PackAt, ScatterAt, and RandomMap are the traditional
// mapping strategies of the paper's related work. Each is a thin shim over
// the corresponding registry policy.
func BySlot(c *Cluster, np int) (*Map, error) {
	return place.Place(context.Background(), "by-slot", &place.Request{Cluster: c, NP: np})
}

// ByNode deals ranks round-robin across nodes.
func ByNode(c *Cluster, np int) (*Map, error) {
	return place.Place(context.Background(), "by-node", &place.Request{Cluster: c, NP: np})
}

// PackAt fills each object of a level before the next (MPICH2-style).
func PackAt(c *Cluster, l Level, np int) (*Map, error) {
	return place.Place(context.Background(), "pack", &place.Request{Cluster: c, NP: np, PackLevel: l})
}

// ScatterAt deals ranks round-robin across the objects of a level.
func ScatterAt(c *Cluster, l Level, np int) (*Map, error) {
	return place.Place(context.Background(), "scatter", &place.Request{Cluster: c, NP: np, PackLevel: l})
}

// RandomMap places ranks on a seeded random PU permutation.
func RandomMap(c *Cluster, seed int64, np int) (*Map, error) {
	return place.Place(context.Background(), "random", &place.Request{Cluster: c, NP: np, Seed: seed})
}

// PlaneMap implements SLURM's plane distribution: blocks of blockSize
// consecutive ranks dealt round-robin across nodes.
func PlaneMap(c *Cluster, blockSize, np int) (*Map, error) {
	return place.Place(context.Background(), "plane", &place.Request{Cluster: c, NP: np, BlockSize: blockSize})
}

// TreeMatchMap places ranks traffic-aware, recursively partitioning the
// communication matrix down the hardware tree (the related-work
// comparator of the paper's reference [3]).
func TreeMatchMap(c *Cluster, tm *TrafficMatrix, np int) (*Map, error) {
	return place.Place(context.Background(), "treematch", &place.Request{Cluster: c, NP: np, Traffic: tm})
}

// TorusDims is a 3-D torus shape; MapTorus performs BlueGene-style XYZT
// mapping.
type TorusDims = torus.Dims

// MapTorus maps ranks by an xyzt-permutation over a torus-shaped cluster.
func MapTorus(c *Cluster, d TorusDims, order string, np int) (*Map, error) {
	return place.Place(context.Background(), "torus", &place.Request{
		Cluster: c, NP: np, TorusDims: [3]int{d.X, d.Y, d.Z}, TorusOrder: order,
	})
}

// FitTorusDims factors a node count into a near-cubic torus shape.
func FitTorusDims(n int) TorusDims { return torus.FitDims(n) }

// TorusOrders lists all 24 XYZT iteration orders.
func TorusOrders() []string { return torus.Orders() }

// ---- Communication-cost simulation ----

// Model evaluates traffic matrices against mappings; Network is the
// inter-node interconnect model; Report the evaluation result.
type (
	Model         = netsim.Model
	Network       = netsim.Network
	Report        = netsim.Report
	TrafficMatrix = commpat.Matrix
)

// NewModel builds a cost model with default intra-node parameters.
func NewModel(n Network) *Model { return netsim.NewModel(n) }

// NewFlatNetwork returns an idealized single-switch network.
func NewFlatNetwork() Network { return netsim.NewFlat() }

// NewFatTreeNetwork returns a two-level fat-tree with the given leaf size.
func NewFatTreeNetwork(leafSize int) Network { return netsim.NewFatTree(leafSize) }

// NewTorusNetwork returns a 3-D torus network with link congestion
// modeling.
func NewTorusNetwork(d TorusDims) Network { return netsim.NewTorus3D(d) }

// Traffic patterns (motivating applications of §I/§II).
func Ring(n int, bytes float64) *TrafficMatrix     { return commpat.Ring(n, bytes) }
func AllToAll(n int, bytes float64) *TrafficMatrix { return commpat.AllToAll(n, bytes) }
func GTC(n int, bytes float64) *TrafficMatrix      { return commpat.GTC(n, bytes) }
func NASCG(n int, bytes float64) *TrafficMatrix    { return commpat.NASCG(n, bytes) }
func NASMG(n int, bytes float64) *TrafficMatrix    { return commpat.NASMG(n, bytes) }
func NASFT(n int, bytes float64) *TrafficMatrix    { return commpat.NASFT(n, bytes) }
func NASLU(n int, bytes float64) *TrafficMatrix    { return commpat.NASLU(n, bytes) }

// Stencil2D builds a 5-point halo-exchange pattern on a px x py grid.
func Stencil2D(px, py int, bytes float64, periodic bool) *TrafficMatrix {
	return commpat.Stencil2D(px, py, bytes, periodic)
}

// Stencil3D builds a 7-point halo-exchange pattern on a px x py x pz grid.
func Stencil3D(px, py, pz int, bytes float64, periodic bool) *TrafficMatrix {
	return commpat.Stencil3D(px, py, pz, bytes, periodic)
}

// Grid2D factors n into a near-square process grid.
func Grid2D(n int) (px, py int) { return commpat.Grid2D(n) }

// ---- Collectives ----

// CollOp identifies an MPI collective algorithm; CollResult its simulated
// completion under a mapping.
type (
	CollOp     = coll.Op
	CollResult = coll.Result
)

// Collective operations.
const (
	Broadcast     = coll.Broadcast
	AllreduceRD   = coll.AllreduceRD
	AllreduceRing = coll.AllreduceRing
	AlltoallOp    = coll.Alltoall
	Barrier       = coll.Barrier
)

// RunCollective simulates a collective over the mapped job.
func RunCollective(op CollOp, c *Cluster, m *Map, model *Model, bytes float64) (*CollResult, error) {
	return coll.Run(op, c, m, model, bytes)
}

// ---- Launch protocol ----

// SpawnProtocol selects the daemon-launch topology; SpawnStats is the
// simulated outcome.
type (
	SpawnProtocol = orte.SpawnProtocol
	SpawnStats    = orte.SpawnStats
)

// Spawn protocols.
const (
	LinearSpawn   = orte.LinearSpawn
	BinomialSpawn = orte.BinomialSpawn
)

// SimulateSpawn models launching daemons on n nodes.
func SimulateSpawn(n int, p SpawnProtocol, latencyUs float64) (*SpawnStats, error) {
	return orte.SimulateSpawn(n, p, latencyUs)
}

// ---- Application simulation ----

// AppConfig and AppResult describe the BSP application simulator: per
// iteration, a compute phase followed by a communication phase bounded by
// the busiest rank or network link.
type (
	AppConfig = appsim.Config
	AppResult = appsim.Result
)

// SimulateApp runs the BSP application simulation for a mapped job.
func SimulateApp(c *Cluster, m *Map, model *Model, tm *TrafficMatrix, cfg AppConfig) (*AppResult, error) {
	return appsim.Run(c, m, model, tm, cfg)
}

// Speedup returns a.TotalUs / b.TotalUs.
func Speedup(a, b *AppResult) float64 { return appsim.Speedup(a, b) }

// ---- Metrics ----

// MapSummary aggregates structural mapping quality.
type MapSummary = metrics.MapSummary

// Summarize computes a MapSummary for a map.
func Summarize(c *Cluster, m *Map) MapSummary { return metrics.Summarize(c, m) }

// ---- Tracing and rankfile export ----

// TraceEvent records one coordinate visit of the mapping iteration;
// TraceAction classifies it (use Mapper.MapTraced to produce traces).
type (
	TraceEvent  = core.TraceEvent
	TraceAction = core.TraceAction
)

// Trace actions.
const (
	TraceMapped          = core.Mapped
	TraceSkipNonexistent = core.SkipNonexistent
	TraceSkipUnavailable = core.SkipUnavailable
	TraceSkipOversub     = core.SkipOversub
	TraceSkipCapped      = core.SkipCapped
)

// RankfileFromMap freezes any mapping plan into Level 4 rankfile form.
func RankfileFromMap(m *Map) (*Rankfile, error) { return rankfile.FromMap(m) }

// FormatRankfile renders a rankfile back to text.
func FormatRankfile(f *Rankfile) string { return rankfile.Format(f) }

// DecodeMap reconstructs a JSON-encoded map against its cluster.
func DecodeMap(data []byte, c *Cluster) (*Map, error) { return core.DecodeMap(data, c) }

// ParseTrafficMatrix reads a traffic matrix from edge-list text
// ("ranks N" header, then "<src> <dst> <bytes>" lines).
func ParseTrafficMatrix(text string) (*TrafficMatrix, error) { return commpat.ParseMatrix(text) }

// FormatTrafficMatrix renders a matrix in edge-list form.
func FormatTrafficMatrix(m *TrafficMatrix) string { return commpat.FormatMatrix(m) }

// RunHierarchicalCollective simulates the two-level (node-leader) variant
// of a collective; ops other than Broadcast/AllreduceRD fall back to the
// flat algorithms.
func RunHierarchicalCollective(op CollOp, c *Cluster, m *Map, model *Model, bytes float64) (*CollResult, error) {
	return coll.RunHierarchical(op, c, m, model, bytes)
}

// ---- Batch scheduling ----

// SchedPolicy is the batch queue discipline; JobSpec one queued job;
// ScheduleResult the simulated outcome.
type (
	SchedPolicy    = rm.SchedPolicy
	JobSpec        = rm.JobSpec
	JobOutcome     = rm.JobOutcome
	ScheduleResult = rm.ScheduleResult
)

// Scheduling policies.
const (
	SchedFIFO     = rm.FIFO
	SchedBackfill = rm.Backfill
)

// NewMatrixNetwork builds a network from explicit per-node-pair latency
// (µs) and bandwidth (bytes/µs) tables, e.g. from site measurements.
func NewMatrixNetwork(latUs, bwBytesPerUs [][]float64) (Network, error) {
	return netsim.NewMatrixNet(latUs, bwBytesPerUs)
}

// NewDragonflyNetwork returns a two-tier group-based (dragonfly) network.
func NewDragonflyNetwork(groupSize int) Network { return netsim.NewDragonfly(groupSize) }

// ---- Flow-level simulation and rank reordering ----

// MsgMessage is one transfer of a communication phase; MsgResult the
// fluid-fair simulation outcome.
type (
	MsgMessage = msgsim.Message
	MsgResult  = msgsim.Result
)

// SimulateMessages runs the max-min-fair flow-level simulation of one
// communication phase — the contention-resolving reference for the
// analytic cost models.
func SimulateMessages(c *Cluster, m *Map, model *Model, msgs []MsgMessage) (*MsgResult, error) {
	return msgsim.Run(c, m, model, msgs)
}

// MessagesFromMatrix expands a traffic matrix into one phase's messages.
func MessagesFromMatrix(tm *TrafficMatrix) []MsgMessage { return msgsim.FromMatrix(tm) }

// ReorderResult describes a communicator rank-reordering optimization.
type ReorderResult = reorder.Result

// ReorderRanks searches for a rank permutation of an already-mapped job
// that lowers communication cost (processors stay fixed).
func ReorderRanks(c *Cluster, m *Map, model *Model, tm *TrafficMatrix, maxSweeps int) (*ReorderResult, error) {
	return reorder.Optimize(c, m, model, tm, maxSweeps)
}

// BindWidth computes a binding of `count` consecutive objects at a level
// per rank — the "<count><level>" syntax of the paper's rmaps_lama_bind.
func BindWidth(c *Cluster, m *Map, level Level, count int) (*BindPlan, error) {
	return bind.ComputeWidth(c, m, level, count)
}

// ParseBindWidthSpec parses "<count><level>" binding specs such as "2c".
func ParseBindWidthSpec(text string) (Level, int, error) { return bind.ParseWidthSpec(text) }
