package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E11"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunSeveralCheapExperiments(t *testing.T) {
	for _, id := range []string{"E2", "E3", "E7", "E10", "E11"} {
		var out bytes.Buffer
		if err := run([]string{"-exp", id, "-seed", "7"}, &out); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out.String(), "### "+id) {
			t.Fatalf("%s header missing", id)
		}
	}
}
