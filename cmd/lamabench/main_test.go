package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"lama/internal/analysis"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E5", "E11"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list missing %s:\n%s", id, out.String())
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunSeveralCheapExperiments(t *testing.T) {
	for _, id := range []string{"E2", "E3", "E7", "E10", "E11"} {
		var out bytes.Buffer
		if err := run([]string{"-exp", id, "-seed", "7"}, &out); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out.String(), "### "+id) {
			t.Fatalf("%s header missing", id)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	var out bytes.Buffer
	if err := run([]string{"-exp", "E4", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := parseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "lamabench/v2" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.GoVersion != runtime.Version() {
		t.Fatalf("goVersion = %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.NumCPU != runtime.NumCPU() {
		t.Fatalf("numCPU = %d, want %d", rep.NumCPU, runtime.NumCPU())
	}
	// GitRevision is best-effort: test binaries usually carry no vcs stamp.
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "E4" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	e := rep.Experiments[0]
	// E4 maps 5,040 sampled layouts x 32 ranks = 161,280 placements.
	if e.Placements != 5040*32 {
		t.Fatalf("placements = %d, want %d", e.Placements, 5040*32)
	}
	if e.WallSeconds <= 0 || e.PlacementsPerSec <= 0 {
		t.Fatalf("timings not recorded: %+v", e)
	}
	if rep.TotalSeconds < e.WallSeconds {
		t.Fatalf("total %v < experiment %v", rep.TotalSeconds, e.WallSeconds)
	}
	// Without -lint, provenance records that no verdict was taken.
	if rep.Lint == nil || rep.Lint.Tool != "lamavet" || rep.Lint.Version != analysis.Version || rep.Lint.Status != "unchecked" {
		t.Fatalf("lint provenance = %+v", rep.Lint)
	}
}

// TestLintProvenance covers the -lint flag's verdict plumbing: trusted
// verdicts are recorded verbatim, unknown modes fail, and "run" executes
// the suite against the module (which this repository keeps clean).
func TestLintProvenance(t *testing.T) {
	l, err := lintProvenance("dirty")
	if err != nil {
		t.Fatal(err)
	}
	if l.Status != "dirty" || l.Tool != "lamavet" || l.Version != analysis.Version {
		t.Fatalf("lint = %+v", l)
	}
	if _, err := lintProvenance("bogus"); err == nil {
		t.Fatal("unknown -lint mode accepted")
	}
	if testing.Short() {
		t.Skip("whole-module -lint=run in -short mode")
	}
	l, err = lintProvenance("run")
	if err != nil {
		t.Fatal(err)
	}
	if l.Status != "clean" || l.Findings != 0 {
		t.Fatalf("lint = %+v, want clean module", l)
	}
}

// TestParseReportAcceptsV1Golden keeps the schema bump backward compatible:
// v1 documents archived by older CI runs must still parse, with the v2
// header fields simply absent.
func TestParseReportAcceptsV1Golden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "perf_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := parseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "lamabench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.GoVersion != "" || rep.GitRevision != "" || rep.NumCPU != 0 {
		t.Fatalf("v1 document grew header fields: %+v", rep)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Placements != 161280 {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
}

func TestParseReportRejectsUnknownSchema(t *testing.T) {
	if _, err := parseReport([]byte(`{"schema":"lamabench/v99"}`)); err == nil {
		t.Fatal("unknown schema should fail")
	}
	if _, err := parseReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage should fail")
	}
}
