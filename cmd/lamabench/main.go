// Command lamabench regenerates the paper's exhibits: it runs the
// experiments registered in internal/exper (Table I, Figure 1, Figure 2,
// the 362,880-permutation claim, and the simulator-backed motivation and
// comparison studies) and prints their result tables.
//
// Usage:
//
//	lamabench            # run everything at sampled scale
//	lamabench -exp E5    # run one experiment
//	lamabench -full      # exhaustive variants (E4 enumerates all 9!)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lama/internal/exper"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamabench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamabench", flag.ContinueOnError)
	expID := fs.String("exp", "", "run a single experiment (E1..E11)")
	full := fs.Bool("full", false, "run exhaustive variants")
	seed := fs.Int64("seed", 1, "seed for randomized experiments")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := exper.Options{Full: *full, Seed: *seed}

	if *list {
		for _, e := range exper.All() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Exhibit)
		}
		return nil
	}

	var todo []exper.Experiment
	if *expID != "" {
		e, err := exper.ByID(*expID)
		if err != nil {
			return err
		}
		todo = []exper.Experiment{e}
	} else {
		todo = exper.All()
	}

	for _, e := range todo {
		fmt.Fprintf(out, "### %s — %s\n\n", e.ID, e.Exhibit)
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %v", e.ID, err)
		}
		for _, t := range tables {
			fmt.Fprintln(out, t.String())
		}
	}
	return nil
}
