// Command lamabench regenerates the paper's exhibits: it runs the
// experiments registered in internal/exper (Table I, Figure 1, Figure 2,
// the 362,880-permutation claim, and the simulator-backed motivation and
// comparison studies) and prints their result tables.
//
// Usage:
//
//	lamabench                  # run everything at sampled scale
//	lamabench -exp E5          # run one experiment
//	lamabench -full            # exhaustive variants (E4 enumerates all 9!)
//	lamabench -json perf.json  # also write machine-readable timings
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lama/internal/analysis"
	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/exper"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/place"
	_ "lama/internal/place/all" // link every built-in policy for -policy
	"lama/internal/rankfile"
	"lama/internal/torus"
)

// reportSchema is the current -json schema tag. v2 added the provenance
// header (goVersion, gitRevision, numCPU); parseReport still accepts v1
// documents, whose header fields simply come back empty.
const reportSchema = "lamabench/v2"

// jsonReport is the machine-readable output of a lamabench run (-json).
// The schema is stable: fields are only ever added, never renamed or
// removed, so CI trend tooling can rely on it across versions.
type jsonReport struct {
	Schema string `json:"schema"` // "lamabench/v2"
	// GoVersion, GitRevision, and NumCPU identify the build and host the
	// timings came from (v2): toolchain, vcs.revision when the binary was
	// built from a checkout, and runtime.NumCPU.
	GoVersion   string           `json:"goVersion,omitempty"`
	GitRevision string           `json:"gitRevision,omitempty"`
	NumCPU      int              `json:"numCPU,omitempty"`
	Full        bool             `json:"full"`
	Seed        int64            `json:"seed"`
	Experiments []jsonExperiment `json:"experiments"`
	// Policies holds the cross-policy placement sweep rows (-policy), one
	// per registered policy run; added in v2 additively.
	Policies []jsonPolicyRow `json:"policies,omitempty"`
	// NetCost holds the network-aware placement scaling series (-net), one
	// row per np scale point; added additively, v2-compatible.
	NetCost []exper.NetCostRow `json:"netcost,omitempty"`
	// Serve holds the closed-loop serving benchmark rows (-serve), one per
	// load phase (cold, cached); added additively, v2-compatible. The same
	// phases also appear as SERVE-* experiment rows so lamatrace diff
	// gates their throughput like any experiment's.
	Serve []jsonServeRow `json:"serve,omitempty"`
	// Lint is the static-analysis provenance of the run (added in v2
	// additively): which lamavet suite version the numbers were taken
	// under and whether the tree was clean when they were.
	Lint         *jsonLint `json:"lint,omitempty"`
	TotalSeconds float64   `json:"totalSeconds"`
}

// jsonLint records the static-analysis state a benchmark ran under, so a
// perf number can be traced to a tree that did (or did not) hold the
// hot-path and determinism invariants.
type jsonLint struct {
	Tool    string `json:"tool"`    // "lamavet"
	Version string `json:"version"` // analysis.Version
	// Status is "clean" or "dirty" (from -lint=run or a CI-supplied
	// verdict), or "unchecked" when no verdict was taken.
	Status   string `json:"status"`
	Findings int    `json:"findings,omitempty"`
}

// lintProvenance resolves the -lint flag: "run" executes the lamavet
// suite over the whole module in-process, "clean"/"dirty" trust a
// verdict the caller (CI) already has, "unchecked" records that none was
// taken.
func lintProvenance(mode string) (*jsonLint, error) {
	l := &jsonLint{Tool: "lamavet", Version: analysis.Version}
	switch mode {
	case "unchecked", "clean", "dirty":
		l.Status = mode
	case "run":
		// Anchor ./... at the module root so the whole-module checks see
		// the whole module regardless of the benchmark's working directory.
		dir := ""
		if gomod, err := exec.Command("go", "env", "GOMOD").Output(); err == nil {
			if p := strings.TrimSpace(string(gomod)); p != "" && p != "/dev/null" {
				dir = filepath.Dir(p)
			}
		}
		diags, _, err := analysis.RunPackages(dir, []string{"./..."}, analysis.Suite(), true)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		if len(diags) == 0 {
			l.Status = "clean"
		} else {
			l.Status = "dirty"
			l.Findings = len(diags)
		}
	default:
		return nil, fmt.Errorf(`unknown -lint mode %q (want "run", "clean", "dirty", or "unchecked")`, mode)
	}
	return l, nil
}

// jsonPolicyRow is one policy's result from the cross-policy sweep: the
// placement shape plus its simulated communication cost on the reference
// workload (GTC traffic, fat-tree network).
type jsonPolicyRow struct {
	Policy    string  `json:"policy"`
	NP        int     `json:"np"`
	Nodes     int     `json:"nodes"`
	NodesUsed int     `json:"nodesUsed"`
	TotalMs   float64 `json:"totalMs"`
	InterMB   float64 `json:"interMB"`
	AvgHops   float64 `json:"avgHops"`
}

// parseReport decodes a lamabench -json document, accepting the current
// v2 schema and the header-less v1 documents older CI runs archived.
func parseReport(data []byte) (*jsonReport, error) {
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	switch rep.Schema {
	case reportSchema, "lamabench/v1":
		return &rep, nil
	default:
		return nil, fmt.Errorf("lamabench: unknown report schema %q", rep.Schema)
	}
}

// jsonExperiment is one experiment's timing record.
type jsonExperiment struct {
	ID          string  `json:"id"`
	Exhibit     string  `json:"exhibit"`
	WallSeconds float64 `json:"wallSeconds"`
	// Placements is the number of rank placements the mapping engines
	// planned during the experiment (0 for experiments that do not map).
	Placements int64 `json:"placements"`
	// PlacementsPerSec is Placements/WallSeconds (0 when no placements).
	PlacementsPerSec float64 `json:"placementsPerSec"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamabench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamabench", flag.ContinueOnError)
	expID := fs.String("exp", "", "run a single experiment (E1..E11)")
	full := fs.Bool("full", false, "run exhaustive variants")
	seed := fs.Int64("seed", 1, "seed for randomized experiments")
	list := fs.Bool("list", false, "list experiments and exit")
	jsonPath := fs.String("json", "", "write per-experiment wall time and placements/sec to this file")
	policyList := fs.String("policy", "", `cross-policy placement sweep instead of the experiments: comma-separated registry policies, or "all"`)
	netSpec := fs.String("net", "", "network-aware placement scaling series instead of the experiments: flat, fat-tree[:leaf], dragonfly[:group], torus[:XxYxZ]")
	netNPs := fs.String("net-np", "4096,16384,65536,102400", "comma-separated rank counts for the -net series")
	netRefine := fs.Bool("net-refine", true, "include the delta-J swap refinement pass in the -net series")
	lintMode := fs.String("lint", "unchecked", `static-analysis provenance recorded in -json: "run" executes the lamavet suite over ./..., "clean"/"dirty" record a CI-supplied verdict, "unchecked" records that no verdict was taken`)
	serve := fs.Bool("serve", false, "closed-loop serving benchmark against the in-process placement engine instead of the experiments")
	serveNodes := fs.Int("serve-nodes", 256, "cluster size for -serve")
	serveNP := fs.Int("serve-np", 4096, "ranks per placement request for -serve")
	serveCold := fs.Int("serve-cold", 64, "cold (cache-bypassing) requests for -serve")
	serveCached := fs.Int("serve-cached", 5000, "cached requests for -serve")
	serveClients := fs.Int("serve-clients", 0, "concurrent closed-loop clients for -serve (0 = GOMAXPROCS)")
	obsFlags := obs.RegisterFlags(fs)
	version := obs.RegisterVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(out, "lamabench")
		return nil
	}
	o, closeObs, err := obsFlags.Observer(os.Stderr)
	if err != nil {
		return err
	}
	opts := exper.Options{Full: *full, Seed: *seed, Obs: o}

	if *list {
		for _, e := range exper.All() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Exhibit)
		}
		return closeObs()
	}

	// The provenance header and the /metrics lama_build_info gauge draw
	// from the same source, so report and scrape identify builds alike.
	build := obs.CurrentBuildInfo()
	report := jsonReport{
		Schema: reportSchema, Full: *full, Seed: *seed,
		GoVersion: build.GoVersion, GitRevision: build.GitRevision, NumCPU: build.NumCPU,
	}
	if report.Lint, err = lintProvenance(*lintMode); err != nil {
		return err
	}
	started := time.Now()

	if *serve {
		rows, exps, t, err := serveBench(*serveNodes, *serveNP, *serveCold, *serveCached, *serveClients, o)
		if err != nil {
			return err
		}
		report.Serve = rows
		report.Experiments = exps
		fmt.Fprintln(out, t.String())
		report.TotalSeconds = time.Since(started).Seconds()
		if err := writeJSON(*jsonPath, &report); err != nil {
			return err
		}
		if err := closeObs(); err != nil {
			return err
		}
		return obsFlags.WriteReport(o.Report("lamabench", map[string]any{
			"serve": true, "serveNodes": *serveNodes, "serveNP": *serveNP,
		}))
	}

	if *netSpec != "" {
		nps, err := parseNPs(*netNPs)
		if err != nil {
			return err
		}
		rows, err := exper.NetScale(*netSpec, nps, *netRefine, o)
		if err != nil {
			return err
		}
		report.NetCost = rows
		fmt.Fprintln(out, exper.NetScaleTable(*netSpec, rows).String())
		report.TotalSeconds = time.Since(started).Seconds()
		if err := writeJSON(*jsonPath, &report); err != nil {
			return err
		}
		if err := closeObs(); err != nil {
			return err
		}
		return obsFlags.WriteReport(o.Report("lamabench", map[string]any{
			"net": *netSpec, "netNP": *netNPs, "netRefine": *netRefine,
		}))
	}

	if *policyList != "" {
		rows, t, err := policySweep(*policyList, *seed, o)
		if err != nil {
			return err
		}
		report.Policies = rows
		fmt.Fprintln(out, t.String())
		report.TotalSeconds = time.Since(started).Seconds()
		if err := writeJSON(*jsonPath, &report); err != nil {
			return err
		}
		if err := closeObs(); err != nil {
			return err
		}
		return obsFlags.WriteReport(o.Report("lamabench", map[string]any{
			"policy": *policyList, "seed": *seed,
		}))
	}

	var todo []exper.Experiment
	if *expID != "" {
		e, err := exper.ByID(*expID)
		if err != nil {
			return err
		}
		todo = []exper.Experiment{e}
	} else {
		todo = exper.All()
	}

	for _, e := range todo {
		fmt.Fprintf(out, "### %s — %s\n\n", e.ID, e.Exhibit)
		expStart := time.Now()
		placedBefore := core.PlacedRanks()
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %v", e.ID, err)
		}
		wall := time.Since(expStart).Seconds()
		placed := core.PlacedRanks() - placedBefore
		rec := jsonExperiment{
			ID: e.ID, Exhibit: e.Exhibit,
			WallSeconds: wall, Placements: placed,
		}
		if placed > 0 && wall > 0 {
			rec.PlacementsPerSec = float64(placed) / wall
		}
		report.Experiments = append(report.Experiments, rec)
		for _, t := range tables {
			fmt.Fprintln(out, t.String())
		}
	}
	report.TotalSeconds = time.Since(started).Seconds()

	if err := writeJSON(*jsonPath, &report); err != nil {
		return err
	}
	if err := closeObs(); err != nil {
		return err
	}
	return obsFlags.WriteReport(o.Report("lamabench", map[string]any{
		"exp": *expID, "full": *full, "seed": *seed,
	}))
}

// parseNPs parses the -net-np comma list into positive rank counts.
func parseNPs(list string) ([]int, error) {
	var nps []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -net-np entry %q (want positive integers)", part)
		}
		nps = append(nps, n)
	}
	if len(nps) == 0 {
		return nil, fmt.Errorf("-net-np %q selects no scale points", list)
	}
	return nps, nil
}

// writeJSON marshals the report to path; an empty path is a no-op.
func writeJSON(path string, report *jsonReport) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write -json report: %v", err)
	}
	return nil
}

// policySweep runs every selected registry policy over the reference
// workload (np=64 on 8 x nehalem-ep, GTC traffic) through the
// policy-generic sweep pool, then costs each placement on a fat-tree
// network. One invocation compares the full strategy space.
func policySweep(list string, seed int64, o *obs.Observer) ([]jsonPolicyRow, *metrics.Table, error) {
	sp, _ := hw.Preset("nehalem-ep")
	c := cluster.Homogeneous(8, sp)
	np := 64
	tm := commpat.GTC(np, 1<<20)
	d := torus.FitDims(c.NumNodes())

	names := strings.Split(list, ",")
	if list == "all" {
		names = place.Names()
	}
	var jobs []place.Job
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		pol, ok := place.Lookup(name)
		if !ok {
			return nil, nil, fmt.Errorf("unknown policy %q (registered: %s)",
				name, strings.Join(place.Names(), ", "))
		}
		req := &place.Request{
			Cluster: c, NP: np, Traffic: tm, Seed: seed,
			TorusDims: [3]int{d.X, d.Y, d.Z},
			Opts:      core.Options{Obs: o},
		}
		if name == "rankfile" {
			base, err := place.Place(context.Background(), "by-slot", &place.Request{Cluster: c, NP: np})
			if err != nil {
				return nil, nil, err
			}
			f, err := rankfile.FromMap(base)
			if err != nil {
				return nil, nil, err
			}
			req.RankfileText = rankfile.Format(f)
		}
		jobs = append(jobs, place.Job{Policy: pol, Req: req})
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("-policy %q selects no policies", list)
	}

	maps, err := place.Sweep(context.Background(), jobs, 0)
	if err != nil {
		return nil, nil, err
	}
	model := netsim.NewModel(netsim.NewFatTree(4))
	t := metrics.NewTable("cross-policy sweep (np=64, 8 x nehalem-ep, gtc traffic, fat-tree)",
		"policy", "total (ms)", "inter-node MB", "avg hops", "nodes used")
	rows := make([]jsonPolicyRow, 0, len(jobs))
	for i, m := range maps {
		rep, err := model.Evaluate(c, m, tm)
		if err != nil {
			return nil, nil, err
		}
		name := jobs[i].Policy.Name()
		t.AddRow(name, metrics.F(rep.TotalTime/1000, 3),
			metrics.F(rep.InterBytes/1e6, 1), metrics.F(rep.AvgHops, 2),
			metrics.I(len(m.RanksByNode())))
		rows = append(rows, jsonPolicyRow{
			Policy: name, NP: np, Nodes: c.NumNodes(),
			NodesUsed: len(m.RanksByNode()),
			TotalMs:   rep.TotalTime / 1000,
			InterMB:   rep.InterBytes / 1e6,
			AvgHops:   rep.AvgHops,
		})
	}
	return rows, t, nil
}
