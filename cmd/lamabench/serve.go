package main

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lama/internal/cluster"
	"lama/internal/engine"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/obs"
)

// jsonServeRow is one closed-loop load phase against the in-process
// placement engine (-serve): the lamad serving path measured without HTTP
// in the way, so the numbers isolate engine admission, cache, and mapper
// cost. Added to lamabench/v2 additively.
type jsonServeRow struct {
	// Mode is "cached" (repeated identical request, served from the
	// placement LRU) or "cold" (cache bypassed, every request runs the
	// full mapper).
	Mode    string `json:"mode"`
	Nodes   int    `json:"nodes"`
	NP      int    `json:"np"`
	Clients int    `json:"clients"`
	// Requests is the completed request count; RequestsPerSec the
	// closed-loop throughput; PlacementsPerSec the rank placements
	// delivered per second (Requests * NP / wall), comparable to the
	// experiment rows' placementsPerSec.
	Requests         int     `json:"requests"`
	WallSeconds      float64 `json:"wallSeconds"`
	RequestsPerSec   float64 `json:"requestsPerSec"`
	PlacementsPerSec float64 `json:"placementsPerSec"`
	// Client-side request latency quantiles in microseconds.
	P50Us float64 `json:"p50Us"`
	P90Us float64 `json:"p90Us"`
	P99Us float64 `json:"p99Us"`
	// Engine counter deltas over the phase.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Shed        int64 `json:"shed"`
}

// serveBench runs the closed-loop serving benchmark: a cold phase (cache
// bypassed) then a cached phase (one identical request repeated), each
// with `clients` concurrent closed-loop callers against one in-process
// engine sized like lamad would be.
func serveBench(nodes, np, coldReqs, cachedReqs, clients int, o *obs.Observer) ([]jsonServeRow, []jsonExperiment, *metrics.Table, error) {
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}
	sp, ok := hw.Preset("nehalem-ep")
	if !ok {
		return nil, nil, nil, fmt.Errorf("nehalem-ep preset missing")
	}
	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{
		Workers:    clients,
		QueueDepth: 2 * clients, // closed loop: clients never outrun the queue
		Obs:        &obs.Observer{Metrics: reg},
	})
	if err := eng.Register("bench", &engine.Snapshot{
		Clu: cluster.SnapshotOf(cluster.Homogeneous(nodes, sp)),
	}); err != nil {
		return nil, nil, nil, err
	}

	var rows []jsonServeRow
	var exps []jsonExperiment
	t := metrics.NewTable(
		fmt.Sprintf("serve closed-loop (%d nodes x %d ranks, %d clients)", nodes, np, clients),
		"mode", "requests", "req/s", "placements/s", "p50 (us)", "p99 (us)")
	for _, phase := range []struct {
		mode    string
		reqs    int
		noCache bool
	}{
		{"cold", coldReqs, true},
		{"cached", cachedReqs, false},
	} {
		row, err := servePhase(eng, reg, phase.mode, nodes, np, phase.reqs, clients, phase.noCache)
		if err != nil {
			return nil, nil, nil, err
		}
		rows = append(rows, row)
		exps = append(exps, jsonExperiment{
			ID:               "SERVE-" + phase.mode,
			Exhibit:          fmt.Sprintf("engine closed-loop, %s path (%dx%d)", phase.mode, nodes, np),
			WallSeconds:      row.WallSeconds,
			Placements:       int64(row.Requests) * int64(np),
			PlacementsPerSec: row.PlacementsPerSec,
		})
		t.AddRow(row.Mode, metrics.I(row.Requests),
			metrics.F(row.RequestsPerSec, 0), metrics.F(row.PlacementsPerSec, 0),
			metrics.F(row.P50Us, 1), metrics.F(row.P99Us, 1))
	}
	_ = o // the engine carries its own registry; CLI observability attaches via -metrics-out phases elsewhere
	return rows, exps, t, nil
}

// servePhase drives one closed-loop phase to completion and snapshots the
// engine counter deltas around it.
func servePhase(eng *engine.Engine, reg *obs.Registry, mode string, nodes, np, requests, clients int, noCache bool) (jsonServeRow, error) {
	// Warm the cached path so the measured phase never pays the one
	// cache-fill mapping.
	if !noCache {
		if _, err := eng.Place(context.Background(), &engine.Request{Cluster: "bench", NP: np}); err != nil {
			return jsonServeRow{}, err
		}
	}
	hits0 := reg.Counter("lama_engine_cache_hits_total").Value()
	miss0 := reg.Counter("lama_engine_cache_misses_total").Value()
	shed0 := reg.Counter("lama_engine_shed_total").Value()

	var issued atomic.Int64
	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cID := 0; cID < clients; cID++ {
		wg.Add(1)
		go func(cID int) {
			defer wg.Done()
			ctx := context.Background()
			for int(issued.Add(1)) <= requests {
				req := &engine.Request{Cluster: "bench", NP: np, NoCache: noCache}
				t0 := time.Now()
				if _, err := eng.Place(ctx, req); err != nil {
					errs[cID] = err
					return
				}
				latencies[cID] = append(latencies[cID],
					float64(time.Since(t0))/float64(time.Microsecond))
			}
		}(cID)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return jsonServeRow{}, fmt.Errorf("serve %s phase: %v", mode, err)
		}
	}

	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	row := jsonServeRow{
		Mode: mode, Nodes: nodes, NP: np, Clients: clients,
		Requests:    len(all),
		WallSeconds: wall,
		P50Us:       quantile(all, 0.50),
		P90Us:       quantile(all, 0.90),
		P99Us:       quantile(all, 0.99),
		CacheHits:   reg.Counter("lama_engine_cache_hits_total").Value() - hits0,
		CacheMisses: reg.Counter("lama_engine_cache_misses_total").Value() - miss0,
		Shed:        reg.Counter("lama_engine_shed_total").Value() - shed0,
	}
	if wall > 0 {
		row.RequestsPerSec = float64(row.Requests) / wall
		row.PlacementsPerSec = float64(row.Requests) * float64(np) / wall
	}
	return row, nil
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
