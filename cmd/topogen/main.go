// Command topogen generates synthetic cluster descriptions: hostfiles for
// lamamap and JSON topology dumps for inspection. It stands in for the
// hwloc discovery step of the paper's toolchain.
//
// Usage:
//
//	topogen -nodes 4 -spec nehalem-ep                 # homogeneous hostfile
//	topogen -specs nehalem-ep,bgp-node,power7         # heterogeneous
//	topogen -nodes 2 -spec fig2 -offline 1:socket:1   # restriction demo
//	topogen -spec magny-cours -json                   # one node as JSON
//	topogen -presets                                  # list presets
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lama/internal/cluster"
	"lama/internal/hw"
	"lama/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	nodes := fs.Int("nodes", 1, "number of identical nodes")
	spec := fs.String("spec", "nehalem-ep", "node spec (preset or colon form)")
	synthetic := fs.String("synthetic", "", "hwloc-style synthetic spec, e.g. \"socket:2 core:4 pu:2\" (overrides -spec)")
	specs := fs.String("specs", "", "comma-separated specs for a heterogeneous cluster")
	slots := fs.Int("slots", 0, "slots per node (0 = cores)")
	offline := fs.String("offline", "", "comma-separated node:level:index restrictions")
	asJSON := fs.Bool("json", false, "emit the first node's topology as JSON")
	asTree := fs.Bool("tree", false, "render the first node's topology as an ASCII tree")
	presets := fs.Bool("presets", false, "list available presets and exit")
	obsFlags := obs.RegisterFlags(fs)
	version := obs.RegisterVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(out, "topogen")
		return nil
	}
	o, closeObs, err := obsFlags.Observer(os.Stderr)
	if err != nil {
		return err
	}

	if *presets {
		for _, name := range hw.PresetNames() {
			sp, _ := hw.Preset(name)
			fmt.Fprintf(out, "%-12s %s (%d PUs)\n", name, sp, sp.TotalPUs())
		}
		return closeObs()
	}

	endGen := o.StartSpan(obs.SpanGenerate)
	var c *cluster.Cluster
	if *specs != "" {
		var list []hw.Spec
		for _, s := range strings.Split(*specs, ",") {
			sp, err := hw.ParseSpec(s)
			if err != nil {
				return err
			}
			list = append(list, sp)
		}
		c = cluster.FromSpecs(list...)
	} else {
		var sp hw.Spec
		var err error
		if *synthetic != "" {
			sp, err = hw.ParseSynthetic(*synthetic)
		} else {
			sp, err = hw.ParseSpec(*spec)
		}
		if err != nil {
			return err
		}
		c = cluster.Homogeneous(*nodes, sp)
	}
	for _, n := range c.Nodes {
		n.Slots = *slots
	}

	if *offline != "" {
		for _, item := range strings.Split(*offline, ",") {
			parts := strings.Split(item, ":")
			if len(parts) != 3 {
				return fmt.Errorf("bad -offline item %q: want node:level:index", item)
			}
			ni, err1 := strconv.Atoi(parts[0])
			level, ok := hw.LevelByName(parts[1])
			idx, err2 := strconv.Atoi(parts[2])
			if err1 != nil || err2 != nil || !ok {
				return fmt.Errorf("bad -offline item %q", item)
			}
			node := c.Node(ni)
			if node == nil {
				return fmt.Errorf("-offline: no node %d", ni)
			}
			if !node.Topo.SetAvailable(level, idx, false) {
				return fmt.Errorf("-offline: no %s %d on node %d", level, idx, ni)
			}
		}
	}

	endGen()
	if reg := o.Reg(); reg != nil {
		reg.Gauge("lama_topogen_nodes").Set(float64(c.NumNodes()))
		reg.Gauge("lama_topogen_usable_pus").Set(float64(c.TotalUsablePUs()))
	}
	if o.Enabled() {
		o.Emit(obs.SrcTopogen, obs.EvGenerate, obs.NoStep,
			obs.F("nodes", c.NumNodes()), obs.F("usable_pus", c.TotalUsablePUs()))
	}
	finishObs := func() error {
		if err := closeObs(); err != nil {
			return err
		}
		return obsFlags.WriteReport(o.Report("topogen", map[string]any{
			"nodes": c.NumNodes(), "spec": *spec, "specs": *specs,
			"offline": *offline, "slots": *slots,
		}))
	}

	if *asJSON {
		data, err := json.MarshalIndent(c.Node(0).Topo, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return finishObs()
	}
	if *asTree {
		fmt.Fprint(out, c.Node(0).Topo.RenderTree())
		return finishObs()
	}
	fmt.Fprint(out, cluster.FormatHostfile(c))
	return finishObs()
}
