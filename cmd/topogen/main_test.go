package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHomogeneousHostfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "3", "-spec", "fig2", "-slots", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "node0 slots=6 spec=") {
		t.Fatalf("line 0 = %q", lines[0])
	}
}

func TestHeterogeneousSpecs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-specs", "nehalem-ep,bgp-node"}, &out); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "spec="); n != 2 {
		t.Fatalf("nodes = %d:\n%s", n, out.String())
	}
}

func TestOfflineRestriction(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "2", "-spec", "fig2", "-offline", "1:socket:1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allowed=0-5") {
		t.Fatalf("restriction missing:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-spec", "magny-cours", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if decoded["level"] != "machine" {
		t.Fatalf("root level = %v", decoded["level"])
	}
}

func TestPresetsList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-presets"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nehalem-ep") {
		t.Fatal("presets missing")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-spec", "bogus~"},
		{"-specs", "fig2,bogus~"},
		{"-nodes", "1", "-offline", "junk"},
		{"-nodes", "1", "-offline", "0:warp:0"},
		{"-nodes", "1", "-offline", "5:socket:0"},
		{"-nodes", "1", "-offline", "0:socket:99"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestSyntheticSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "2", "-synthetic", "socket:2 core:4 pu:2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spec=1:2:1:1:1:1:4:2") {
		t.Fatalf("output:\n%s", out.String())
	}
	var bad bytes.Buffer
	if err := run([]string{"-synthetic", "warp:9"}, &bad); err == nil {
		t.Fatal("bad synthetic should fail")
	}
}

func TestTreeOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-spec", "nehalem-ep", "-tree"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "machine#0") || !strings.Contains(out.String(), "core#0 (pus 0,8)") {
		t.Fatalf("tree:\n%s", out.String())
	}
}
