package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func reportWithPhase(placeUs float64, stalls int64) string {
	return fmt.Sprintf(`{
	  "schema": "runreport/v1", "tool": "lamasim",
	  "phaseTotalsUs": {"place": %g, "prune": 5},
	  "metrics": {
	    "counters": {"lama_map_stalls_total": %d, "lama_maps_total": 3},
	    "histograms": {"lama_map_duration_us": {
	      "buckets": [{"le":"+Inf","count":1}], "sum": %g, "count": 1}}
	  }
	}`, placeUs, stalls, placeUs)
}

func benchWith(wall, pps, total float64) string {
	return fmt.Sprintf(`{
	  "schema": "lamabench/v2",
	  "experiments": [{"id":"E1","exhibit":"x","wallSeconds":%g,"placementsPerSec":%g}],
	  "totalSeconds": %g
	}`, wall, pps, total)
}

func TestDiffReportsClean(t *testing.T) {
	oldP := writeFixture(t, "old.json", reportWithPhase(500, 0))
	newP := writeFixture(t, "new.json", reportWithPhase(550, 0)) // +10% < 25%
	var out bytes.Buffer
	if err := run([]string{"diff", oldP, newP}, &out); err != nil {
		t.Fatalf("10%% drift should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDiffReportsPhaseRegression(t *testing.T) {
	oldP := writeFixture(t, "old.json", reportWithPhase(500, 0))
	newP := writeFixture(t, "new.json", reportWithPhase(800, 0)) // +60%
	var out bytes.Buffer
	err := run([]string{"diff", oldP, newP}, &out)
	if err == nil || !strings.Contains(err.Error(), "phase place") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("table should mark the regression:\n%s", out.String())
	}
	// A looser threshold lets the same pair pass.
	out.Reset()
	if err := run([]string{"diff", "-threshold", "75", oldP, newP}, &out); err != nil {
		t.Fatalf("75%% threshold should pass: %v", err)
	}
}

func TestDiffReportsJitterFloor(t *testing.T) {
	// The prune phase doubles (5 -> 10us) but sits below -min-us: ignored.
	oldP := writeFixture(t, "old.json", reportWithPhase(500, 0))
	newP := writeFixture(t, "new.json", `{
	  "schema": "runreport/v1", "tool": "lamasim",
	  "phaseTotalsUs": {"place": 500, "prune": 10}
	}`)
	var out bytes.Buffer
	if err := run([]string{"diff", oldP, newP}, &out); err != nil {
		t.Fatalf("sub-floor jitter should pass: %v\n%s", err, out.String())
	}
}

func TestDiffReportsStallCounter(t *testing.T) {
	oldP := writeFixture(t, "old.json", reportWithPhase(500, 0))
	newP := writeFixture(t, "new.json", reportWithPhase(500, 2))
	var out bytes.Buffer
	err := run([]string{"diff", oldP, newP}, &out)
	if err == nil || !strings.Contains(err.Error(), "lama_map_stalls_total") {
		t.Fatalf("stall growth should regress regardless of threshold: %v", err)
	}
}

func TestDiffBench(t *testing.T) {
	oldP := writeFixture(t, "old.json", benchWith(1.0, 1000, 1.0))
	newP := writeFixture(t, "new.json", benchWith(1.1, 950, 1.1)) // within 25%
	var out bytes.Buffer
	if err := run([]string{"diff", oldP, newP}, &out); err != nil {
		t.Fatalf("small drift should pass: %v\n%s", err, out.String())
	}

	slow := writeFixture(t, "slow.json", benchWith(2.0, 1000, 2.0)) // wall +100%
	out.Reset()
	if err := run([]string{"diff", oldP, slow}, &out); err == nil ||
		!strings.Contains(err.Error(), "experiment E1") {
		t.Fatalf("err = %v", err)
	}

	weak := writeFixture(t, "weak.json", benchWith(1.0, 400, 1.0)) // throughput -60%
	out.Reset()
	if err := run([]string{"diff", oldP, weak}, &out); err == nil ||
		!strings.Contains(err.Error(), "placements/s") {
		t.Fatalf("err = %v", err)
	}
}

func TestDiffBenchJitterFloor(t *testing.T) {
	// A 1ms experiment tripling is scheduler noise, not a regression.
	oldP := writeFixture(t, "old.json", benchWith(0.001, 1000, 0.001))
	newP := writeFixture(t, "new.json", benchWith(0.003, 300, 0.003))
	var out bytes.Buffer
	if err := run([]string{"diff", oldP, newP}, &out); err != nil {
		t.Fatalf("sub-floor bench jitter should pass: %v\n%s", err, out.String())
	}
	// Lowering the floor re-arms the gate for the same pair.
	out.Reset()
	if err := run([]string{"diff", "-min-s", "0.0005", oldP, newP}, &out); err == nil {
		t.Fatal("below-floor override should regress")
	}
}

func TestDiffArgErrors(t *testing.T) {
	report := writeFixture(t, "m.json", reportWithPhase(500, 0))
	bench := writeFixture(t, "b.json", benchWith(1, 1, 1))
	trace := writeFixture(t, "t.jsonl", fixtureTrace)
	var out bytes.Buffer
	if err := run([]string{"diff", report}, &out); err == nil {
		t.Fatal("one file should fail")
	}
	if err := run([]string{"diff", report, bench}, &out); err == nil ||
		!strings.Contains(err.Error(), "is a") {
		t.Fatalf("kind mismatch: %v", err)
	}
	if err := run([]string{"diff", trace, report}, &out); err == nil ||
		!strings.Contains(err.Error(), "not traces") {
		t.Fatalf("trace diff: %v", err)
	}
}
