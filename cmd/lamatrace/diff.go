package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"lama/internal/metrics"
	"lama/internal/obs"
)

// runDiff compares two artifacts of the same kind and fails (nonzero
// exit) when the new run regressed: phase totals or histogram means up
// past -threshold percent for run reports; experiment wall time up,
// placement throughput down, or total time up past it for lamabench
// reports. This is the CI perf gate.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamatrace diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 25, "regression threshold in percent")
	minUs := fs.Float64("min-us", 100, "ignore phases/histograms whose baseline is below this many microseconds (scheduler jitter floor)")
	minS := fs.Float64("min-s", 0.05, "ignore bench experiments shorter than this many seconds in both runs (scheduler jitter floor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want OLD NEW, got %d file(s)", fs.NArg())
	}
	oldDoc, err := classify(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := classify(fs.Arg(1))
	if err != nil {
		return err
	}
	if oldDoc.kind == kindTrace || newDoc.kind == kindTrace {
		return fmt.Errorf("diff: compares reports, not traces (run summary on %s instead)", fs.Arg(0))
	}
	if oldDoc.kind != newDoc.kind {
		return fmt.Errorf("diff: %s is a %s but %s is a %s", fs.Arg(0), oldDoc.kind, fs.Arg(1), newDoc.kind)
	}

	var regressions []string
	if oldDoc.kind == kindRunReport {
		regressions = diffReports(out, oldDoc.report, newDoc.report, *threshold, *minUs)
	} else {
		regressions = diffBench(out, oldDoc.bench, newDoc.bench, *threshold, *minS)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) past %.0f%%:\n  %s",
			len(regressions), *threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "no regressions past %.0f%%\n", *threshold)
	return nil
}

// deltaRow formats one compared quantity and classifies it. higherIsWorse
// selects the regression direction; a floor of 0 disables the jitter
// filter for that quantity.
func deltaRow(t *metrics.Table, regressions *[]string, name string,
	oldV, newV, threshold, floor float64, higherIsWorse bool) {
	verdict := "ok"
	switch {
	case oldV == 0 && newV == 0:
		verdict = "-"
	case oldV == 0:
		verdict = "new"
	default:
		change := (newV - oldV) / oldV * 100
		if !higherIsWorse {
			change = -change
		}
		if change > threshold && (floor <= 0 || oldV >= floor || newV >= floor) {
			verdict = "REGRESSED"
			*regressions = append(*regressions,
				fmt.Sprintf("%s: %.3g -> %.3g (%+.1f%%)", name, oldV, newV, (newV-oldV)/oldV*100))
		}
	}
	t.AddRow(name, metrics.F(oldV, 2), metrics.F(newV, 2), pctChange(oldV, newV), verdict)
}

// diffReports compares two runreport/v1 documents: phase totals and
// histogram means regress when slower past the threshold; stall/dropped
// counters regress when they grew at all.
func diffReports(out io.Writer, oldR, newR *obs.RunReport, threshold, minUs float64) []string {
	var regressions []string

	t := metrics.NewTable(fmt.Sprintf("phase totals, %s vs %s (us)", oldR.Tool, newR.Tool),
		"phase", "old", "new", "change", "verdict")
	for _, name := range unionNames(oldR.PhaseTotalsUs, newR.PhaseTotalsUs) {
		deltaRow(t, &regressions, "phase "+name,
			oldR.PhaseTotalsUs[name], newR.PhaseTotalsUs[name], threshold, minUs, true)
	}
	fmt.Fprintln(out, t.String())

	oldM, newM := oldR.Metrics, newR.Metrics
	if oldM == nil {
		oldM = &obs.MetricsSnapshot{}
	}
	if newM == nil {
		newM = &obs.MetricsSnapshot{}
	}
	if len(oldM.Histograms)+len(newM.Histograms) > 0 {
		t := metrics.NewTable("histogram means", "name", "old", "new", "change", "verdict")
		for _, name := range unionNames(oldM.Histograms, newM.Histograms) {
			deltaRow(t, &regressions, "histogram "+name,
				histMean(oldM.Histograms[name]), histMean(newM.Histograms[name]),
				threshold, minUs, true)
		}
		fmt.Fprintln(out, t.String())
	}

	// Health counters: any growth in stalls or drops is a finding on its
	// own, independent of the latency threshold.
	for _, name := range unionNames(oldM.Counters, newM.Counters) {
		if !strings.Contains(name, "stall") && !strings.Contains(name, "dropped") {
			continue
		}
		if newM.Counters[name] > oldM.Counters[name] {
			regressions = append(regressions, fmt.Sprintf("counter %s: %d -> %d",
				name, oldM.Counters[name], newM.Counters[name]))
		}
	}
	return regressions
}

// diffBench compares two lamabench -json reports experiment by
// experiment. Experiments shorter than minS seconds in both runs are
// exempt: at sub-millisecond wall times a single scheduler hiccup is a
// three-digit percentage.
func diffBench(out io.Writer, oldR, newR *benchReport, threshold, minS float64) []string {
	var regressions []string
	oldBy := map[string]benchExperiment{}
	for _, e := range oldR.Experiments {
		oldBy[e.ID] = e
	}
	t := metrics.NewTable("experiment wall time (s)", "id", "old", "new", "change", "verdict")
	for _, e := range newR.Experiments {
		base, ok := oldBy[e.ID]
		if !ok {
			t.AddRow(e.ID, "-", metrics.F(e.WallSeconds, 2), "-", "new")
			continue
		}
		deltaRow(t, &regressions, "experiment "+e.ID,
			base.WallSeconds, e.WallSeconds, threshold, minS, true)
		pastFloor := minS <= 0 || base.WallSeconds >= minS || e.WallSeconds >= minS
		if pastFloor && base.PlacementsPerSec > 0 && e.PlacementsPerSec > 0 {
			drop := (base.PlacementsPerSec - e.PlacementsPerSec) / base.PlacementsPerSec * 100
			if drop > threshold {
				regressions = append(regressions,
					fmt.Sprintf("experiment %s placements/s: %.3g -> %.3g (-%.1f%%)",
						e.ID, base.PlacementsPerSec, e.PlacementsPerSec, drop))
			}
		}
		delete(oldBy, e.ID)
	}
	for id := range oldBy {
		t.AddRow(id, metrics.F(oldBy[id].WallSeconds, 2), "-", "-", "removed")
	}
	fmt.Fprintln(out, t.String())

	tt := metrics.NewTable("totals", "quantity", "old", "new", "change", "verdict")
	deltaRow(tt, &regressions, "totalSeconds", oldR.TotalSeconds, newR.TotalSeconds, threshold, minS, true)
	fmt.Fprintln(out, tt.String())
	return regressions
}

// histMean is a histogram snapshot's mean observation (0 when empty).
func histMean(h obs.HistogramSnapshot) float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// unionNames merges two maps' keys, sorted.
func unionNames[V any](a, b map[string]V) []string {
	set := map[string]bool{}
	for n := range a {
		set[n] = true
	}
	for n := range b {
		set[n] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
