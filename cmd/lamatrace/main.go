// Command lamatrace analyses the observability artifacts the other CLIs
// record: JSONL event traces (-trace-out), runreport/v1 documents
// (-metrics-out), and lamabench -json timing reports. It is the offline
// half of the telemetry plane — the -listen server shows a run live,
// lamatrace answers questions about runs already on disk.
//
// Usage:
//
//	lamatrace summary trace.jsonl        # event counts, vocabulary check, J extraction
//	lamatrace summary report.json        # phase breakdown, metrics, series
//	lamatrace diff old.json new.json     # regression gate: nonzero exit on slowdowns
//	lamatrace validate a.jsonl b.json    # structural validation
//
// diff compares two runreport/v1 documents or two lamabench -json reports
// and exits nonzero when the new run regressed past -threshold percent —
// the CI perf gate.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"lama/internal/obs"
)

const usage = `usage: lamatrace <command> [flags] <file>...

commands:
  summary   per-phase latency breakdown, event counts cross-checked
            against the observability vocabulary, and J-objective
            before/after extraction from one artifact
  diff      compare two runreport/v1 or two lamabench -json documents;
            nonzero exit when the new run regressed past -threshold
  validate  structurally validate traces and reports

artifacts: .jsonl files are JSONL event traces; other files are sniffed
by their "schema" field (runreport/v1, lamabench/v1, lamabench/v2).`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamatrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("no command\n%s", usage)
	}
	switch args[0] {
	case "summary":
		return runSummary(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "validate":
		return runValidateCmd(args[1:], out)
	case "help", "-h", "-help", "--help":
		fmt.Fprintln(out, usage)
		return nil
	case "version", "-version", "--version":
		obs.PrintVersion(out, "lamatrace")
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", args[0], usage)
	}
}

// docKind discriminates the artifact types lamatrace understands.
type docKind int

const (
	kindTrace docKind = iota
	kindRunReport
	kindBench
)

func (k docKind) String() string {
	switch k {
	case kindTrace:
		return "JSONL trace"
	case kindRunReport:
		return "runreport/v1"
	default:
		return "lamabench report"
	}
}

// benchReport mirrors the stable subset of the lamabench -json schema this
// command consumes. cmd packages cannot import each other, and the schema
// is documented append-only, so a local decode struct is the contract.
type benchReport struct {
	Schema       string            `json:"schema"`
	GoVersion    string            `json:"goVersion"`
	GitRevision  string            `json:"gitRevision"`
	NumCPU       int               `json:"numCPU"`
	Full         bool              `json:"full"`
	Seed         int64             `json:"seed"`
	Experiments  []benchExperiment `json:"experiments"`
	TotalSeconds float64           `json:"totalSeconds"`
}

type benchExperiment struct {
	ID               string  `json:"id"`
	Exhibit          string  `json:"exhibit"`
	WallSeconds      float64 `json:"wallSeconds"`
	Placements       int64   `json:"placements"`
	PlacementsPerSec float64 `json:"placementsPerSec"`
}

// document is one loaded artifact; exactly one payload field is non-nil
// (trace paths are not loaded here, only classified).
type document struct {
	kind   docKind
	report *obs.RunReport
	bench  *benchReport
}

// classify sniffs and (for JSON documents) parses one artifact. Traces are
// classified by suffix only; their streaming consumers re-open the file.
func classify(path string) (*document, error) {
	if strings.HasSuffix(path, ".jsonl") {
		return &document{kind: kindTrace}, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("%s: not a JSON document: %v", path, err)
	}
	switch {
	case head.Schema == obs.RunReportSchema:
		rep, err := obs.ValidateRunReport(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return &document{kind: kindRunReport, report: rep}, nil
	case strings.HasPrefix(head.Schema, "lamabench/"):
		var rep benchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		return &document{kind: kindBench, bench: &rep}, nil
	default:
		return nil, fmt.Errorf("%s: unknown schema %q (want %s or lamabench/*)",
			path, head.Schema, obs.RunReportSchema)
	}
}

// runValidateCmd structurally validates each artifact and prints a one-line
// verdict per file; the first malformed file fails the run.
func runValidateCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("validate: no files given")
	}
	for _, path := range args {
		if strings.HasSuffix(path, ".jsonl") {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			n, bySource, err := obs.ValidateJSONLTrace(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			fmt.Fprintf(out, "%s: ok, JSONL trace, %d events from %d sources\n", path, n, len(bySource))
			continue
		}
		doc, err := classify(path)
		if err != nil {
			return err
		}
		switch doc.kind {
		case kindRunReport:
			fmt.Fprintf(out, "%s: ok, %s from %s (%d phases)\n",
				path, obs.RunReportSchema, doc.report.Tool, len(doc.report.Phases))
		case kindBench:
			fmt.Fprintf(out, "%s: ok, %s, %d experiments\n",
				path, doc.bench.Schema, len(doc.bench.Experiments))
		}
	}
	return nil
}
