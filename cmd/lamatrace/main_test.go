package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture drops content into a temp file and returns its path.
func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const fixtureTrace = `{"src":"map","event":"done","policy":"by-slot","np":8}
{"src":"netsim","event":"order","j_before":100,"j_after":80}
{"src":"netsim","event":"refine","j_before":80,"j_after":72}
{"src":"supervise","event":"detect","step":12,"ranks":[3]}
`

const fixtureReport = `{
  "schema": "runreport/v1",
  "tool": "lamasim",
  "phases": [{"name":"place","startUs":0,"durUs":500}],
  "phaseTotalsUs": {"place": 500, "sweep": 120},
  "metrics": {
    "counters": {"lama_maps_total": 2},
    "histograms": {"lama_map_duration_us": {
      "buckets": [{"le":1000,"count":2},{"le":"+Inf","count":2}],
      "sum": 500, "count": 2}}
  },
  "series": {"world_size": [{"step":0,"value":16},{"step":50,"value":20}]}
}`

func TestRunNoArgsAndUnknown(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"bogus"}, &out); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"help"}, &out); err != nil || !strings.Contains(out.String(), "summary") {
		t.Fatalf("help: err=%v out=%q", err, out.String())
	}
}

func TestSummaryTrace(t *testing.T) {
	path := writeFixture(t, "t.jsonl", fixtureTrace)
	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"4 events",
		"netsim", "order", "refine",
		"supervise", "detect",
		"objective transitions",
		"netsim/order", "-20.0%", // 100 -> 80
		"netsim/refine", "-10.0%", // 80 -> 72
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestSummaryTraceFlagsUnregisteredVocab(t *testing.T) {
	path := writeFixture(t, "t.jsonl", `{"src":"map","event":"no-such-event"}`+"\n")
	var out bytes.Buffer
	err := run([]string{"summary", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "not in the observability vocabulary") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(out.String(), "UNREGISTERED") {
		t.Fatalf("table should mark the pair:\n%s", out.String())
	}
}

func TestSummaryReport(t *testing.T) {
	path := writeFixture(t, "m.json", fixtureReport)
	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"runreport/v1 from lamasim",
		"phase latency breakdown",
		"place", "80.6%", // 500 of 620
		"lama_maps_total",
		"lama_map_duration_us", "250.00", // mean 500/2
		"world_size", "16.000", "20.000",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestSummaryBench(t *testing.T) {
	path := writeFixture(t, "b.json", `{
	  "schema": "lamabench/v2", "goVersion": "go1.22.0", "numCPU": 8,
	  "experiments": [
	    {"id":"E1","exhibit":"Table I","wallSeconds":1.5,"placements":1000,"placementsPerSec":666.7}
	  ],
	  "totalSeconds": 1.5
	}`)
	var out bytes.Buffer
	if err := run([]string{"summary", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"lamabench/v2", "go1.22.0", "E1", "Table I", "1.50"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
}

func TestSummaryRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"summary"}, &out); err == nil {
		t.Fatal("no file should fail")
	}
	bad := writeFixture(t, "x.json", `{"schema":"mystery/v1"}`)
	if err := run([]string{"summary", bad}, &out); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("err = %v", err)
	}
	garbage := writeFixture(t, "g.json", "not json")
	if err := run([]string{"summary", garbage}, &out); err == nil {
		t.Fatal("garbage should fail")
	}
	if err := run([]string{"summary", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestValidateCommand(t *testing.T) {
	trace := writeFixture(t, "t.jsonl", fixtureTrace)
	report := writeFixture(t, "m.json", fixtureReport)
	var out bytes.Buffer
	if err := run([]string{"validate", trace, report}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "4 events") || !strings.Contains(got, "runreport/v1") {
		t.Fatalf("validate output:\n%s", got)
	}
	if err := run([]string{"validate"}, &out); err == nil {
		t.Fatal("no files should fail")
	}
	broken := writeFixture(t, "broken.jsonl", "{\"src\":\"map\"}\n")
	if err := run([]string{"validate", broken}, &out); err == nil {
		t.Fatal("trace without event key should fail")
	}
	badReport := writeFixture(t, "bad.json", `{"schema":"runreport/v1"}`)
	if err := run([]string{"validate", badReport}, &out); err == nil {
		t.Fatal("report without tool should fail")
	}
}
