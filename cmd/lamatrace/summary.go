package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"lama/internal/metrics"
	"lama/internal/obs"
)

// runSummary renders one artifact for humans: event counts cross-checked
// against the observability vocabulary for traces, the per-phase latency
// breakdown plus metrics for run reports, and the experiment table for
// lamabench reports.
func runSummary(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamatrace summary", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summary: want exactly one file, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	doc, err := classify(path)
	if err != nil {
		return err
	}
	switch doc.kind {
	case kindTrace:
		return summarizeTrace(out, path)
	case kindRunReport:
		return summarizeReport(out, doc.report)
	default:
		return summarizeBench(out, doc.bench)
	}
}

// jTransition is one extracted objective change: a netsim ordering or
// refinement pass's J before/after, or a fault-aware spread's locality.
type jTransition struct {
	key           string
	before, after float64
}

// summarizeTrace scans a JSONL trace once: events counted by (src, event)
// and checked against the canonical vocabulary (vocab.go), and the
// J-objective / locality transitions the netsim and faultaware events
// carry extracted into a before/after table.
func summarizeTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type key struct{ src, event string }
	counts := map[key]int{}
	var transitions []jTransition
	total := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var raw map[string]any
		if err := json.Unmarshal(line, &raw); err != nil {
			return fmt.Errorf("%s: line %d does not parse: %v", path, total+1, err)
		}
		src, _ := raw["src"].(string)
		event, _ := raw["event"].(string)
		if src == "" || event == "" {
			return fmt.Errorf("%s: line %d missing src/event", path, total+1)
		}
		counts[key{src, event}]++
		total++
		name := src + "/" + event
		if before, after, ok := numPair(raw, "j_before", "j_after"); ok {
			transitions = append(transitions, jTransition{name, before, after})
		}
		if before, after, ok := numPair(raw, "locality_before", "locality_after"); ok {
			transitions = append(transitions, jTransition{name + " locality", before, after})
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].event < keys[j].event
	})
	t := metrics.NewTable(fmt.Sprintf("%s: %d events", path, total),
		"source", "event", "count", "vocab")
	unknown := 0
	for _, k := range keys {
		v := "ok"
		if !obs.VocabRegistered(k.src, k.event) {
			v = "UNREGISTERED"
			unknown++
		}
		t.AddRow(k.src, k.event, metrics.I(counts[k]), v)
	}
	fmt.Fprintln(out, t.String())

	if len(transitions) > 0 {
		jt := metrics.NewTable("objective transitions", "event", "before", "after", "change")
		for _, tr := range transitions {
			jt.AddRow(tr.key, metrics.F(tr.before, 3), metrics.F(tr.after, 3), pctChange(tr.before, tr.after))
		}
		fmt.Fprintln(out, jt.String())
	}
	if unknown > 0 {
		return fmt.Errorf("%s: %d (source, event) pair(s) not in the observability vocabulary", path, unknown)
	}
	return nil
}

// summarizeReport renders a runreport/v1: phase totals with wall-time
// shares, the metrics snapshot, and each series' first/last samples.
func summarizeReport(out io.Writer, rep *obs.RunReport) error {
	fmt.Fprintf(out, "%s from %s: %d phase spans, %d recovery entries\n\n",
		rep.Schema, rep.Tool, len(rep.Phases), len(rep.Recovery))

	if len(rep.PhaseTotalsUs) > 0 {
		names := sortedNames(rep.PhaseTotalsUs)
		sort.Slice(names, func(i, j int) bool {
			return rep.PhaseTotalsUs[names[i]] > rep.PhaseTotalsUs[names[j]]
		})
		sum := 0.0
		for _, n := range names {
			sum += rep.PhaseTotalsUs[n]
		}
		t := metrics.NewTable("phase latency breakdown", "phase", "total (us)", "share", "vocab")
		for _, n := range names {
			v := "ok"
			if !obs.SpanRegistered(n) {
				v = "stage" // pipeline stages span under their own name
			}
			t.AddRow(n, metrics.F(rep.PhaseTotalsUs[n], 1),
				metrics.F(rep.PhaseTotalsUs[n]/sum*100, 1)+"%", v)
		}
		fmt.Fprintln(out, t.String())
	}

	if m := rep.Metrics; m != nil {
		if len(m.Counters) > 0 {
			t := metrics.NewTable("counters", "name", "value")
			for _, n := range sortedNames(m.Counters) {
				t.AddRow(n, fmt.Sprintf("%d", m.Counters[n]))
			}
			fmt.Fprintln(out, t.String())
		}
		if len(m.Histograms) > 0 {
			t := metrics.NewTable("histograms", "name", "count", "mean")
			for _, n := range sortedNames(m.Histograms) {
				h := m.Histograms[n]
				mean := 0.0
				if h.Count > 0 {
					mean = h.Sum / float64(h.Count)
				}
				t.AddRow(n, fmt.Sprintf("%d", h.Count), metrics.F(mean, 2))
			}
			fmt.Fprintln(out, t.String())
		}
	}

	if len(rep.Series) > 0 {
		t := metrics.NewTable("series", "name", "samples", "first", "last")
		for _, n := range sortedNames(rep.Series) {
			pts := rep.Series[n]
			if len(pts) == 0 {
				t.AddRow(n, "0", "-", "-")
				continue
			}
			t.AddRow(n, metrics.I(len(pts)),
				metrics.F(pts[0].Value, 3), metrics.F(pts[len(pts)-1].Value, 3))
		}
		fmt.Fprintln(out, t.String())
	}
	return nil
}

// summarizeBench renders a lamabench -json report: provenance header and
// the per-experiment timing table.
func summarizeBench(out io.Writer, rep *benchReport) error {
	fmt.Fprintf(out, "%s: %d experiments, %.1fs total", rep.Schema, len(rep.Experiments), rep.TotalSeconds)
	if rep.GoVersion != "" {
		fmt.Fprintf(out, " (%s", rep.GoVersion)
		if rep.GitRevision != "" {
			rev := rep.GitRevision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			fmt.Fprintf(out, ", rev %s", rev)
		}
		if rep.NumCPU > 0 {
			fmt.Fprintf(out, ", %d CPUs", rep.NumCPU)
		}
		fmt.Fprint(out, ")")
	}
	fmt.Fprint(out, "\n\n")
	t := metrics.NewTable("experiments", "id", "exhibit", "wall (s)", "placements/s")
	for _, e := range rep.Experiments {
		pps := "-"
		if e.PlacementsPerSec > 0 {
			pps = metrics.F(e.PlacementsPerSec, 0)
		}
		t.AddRow(e.ID, e.Exhibit, metrics.F(e.WallSeconds, 2), pps)
	}
	fmt.Fprintln(out, t.String())
	return nil
}

// numPair extracts two float fields when both are present.
func numPair(raw map[string]any, a, b string) (float64, float64, bool) {
	av, aok := raw[a].(float64)
	bv, bok := raw[b].(float64)
	return av, bv, aok && bok
}

// pctChange renders the relative change from before to after ("-" when
// before is zero).
func pctChange(before, after float64) string {
	if before == 0 {
		return "-"
	}
	return metrics.F((after-before)/before*100, 1) + "%"
}

// sortedNames returns a map's keys sorted.
func sortedNames[M ~map[string]V, V any](m M) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
