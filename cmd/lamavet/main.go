// Command lamavet runs the repository's static-analysis suite (see
// internal/analysis): mapiter, nodeterm, obsvocab, hotpath, ctxfirst,
// and the lamavet/3 concurrency set — snapfrozen, lockcheck,
// golifecycle, atomicmix.
//
// Standalone, the usual way:
//
//	go run ./cmd/lamavet ./...
//
// exits 0 when the module is clean, 1 when there are findings (printed
// one per line as file:line:col: analyzer: message), 2 on a load error.
// Whole-module checks (obsvocab's dead-vocabulary-entry detection) run
// only when the ./... pattern is among the arguments, since they are
// meaningless on a slice of the module.
//
// With -json, the report is a machine-readable object:
//
//	{"version": "lamavet/3",
//	 "findings":     [{"analyzer", "file", "line", "col", "message"}, ...],
//	 "suppressions": [{"analyzer", "file", "line", "col", "kind", "reason"}, ...]}
//
// so CI can surface findings as annotations and audit the accepted
// //lama:*-ok exemption set without grepping the tree. The exit code is
// the same as in plain mode.
//
// The binary also speaks the go vet -vettool protocol:
//
//	go build -o /tmp/lamavet ./cmd/lamavet
//	go vet -vettool=/tmp/lamavet ./...
//
// In that mode the go command invokes it once per package with a *.cfg
// JSON file describing sources and export data, and expects a -V=full
// version handshake; findings exit 2, vet's convention. Per-package
// invocation means whole-module checks stay off under vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lama/internal/analysis"
	"lama/internal/obs"
)

func main() {
	// `go vet` probes the tool's identity and flag set before using it.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "-V":
			fmt.Printf("lamavet version %s\n", analysis.Version)
			return
		case "-version", "--version":
			obs.PrintVersion(os.Stdout, "lamavet")
			return
		case "-flags":
			// No tool-specific analyzer flags; the go command wants the
			// (empty) set as JSON.
			fmt.Println("[]")
			return
		}
	}
	// `go vet` hands over one package as a trailing config file.
	if n := len(os.Args); n > 1 && strings.HasSuffix(os.Args[n-1], ".cfg") {
		os.Exit(vetMode(os.Args[n-1]))
	}
	os.Exit(standalone())
}

// standalone analyzes the packages named by the command line's patterns.
func standalone() int {
	fs := flag.NewFlagSet("lamavet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print diagnostics as a JSON array")
	fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	whole := false
	for _, p := range patterns {
		if p == "./..." {
			whole = true
		}
	}
	diags, sups, err := analysis.RunPackages("", patterns, analysis.Suite(), whole)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamavet: %v\n", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport(diags, sups)); err != nil {
			fmt.Fprintf(os.Stderr, "lamavet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "lamavet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonSuppression is one honored //lama:*-ok exemption in -json output.
type jsonSuppression struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Kind     string `json:"kind"`
	Reason   string `json:"reason"`
}

// jsonReport shapes the -json document. Slices are always present (never
// null) so consumers can index without nil checks.
func jsonReport(diags []analysis.Diagnostic, sups []analysis.Suppression) map[string]any {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	suppressions := make([]jsonSuppression, 0, len(sups))
	for _, s := range sups {
		suppressions = append(suppressions, jsonSuppression{
			Analyzer: s.Analyzer,
			File:     s.Pos.Filename,
			Line:     s.Pos.Line,
			Col:      s.Pos.Column,
			Kind:     s.Kind,
			Reason:   s.Reason,
		})
	}
	return map[string]any{
		"version":      analysis.Version,
		"findings":     findings,
		"suppressions": suppressions,
	}
}

// vetConfig is the subset of the go command's vet config lamavet reads.
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vetMode analyzes the single package described by a vet config file.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamavet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lamavet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// lamavet keeps no cross-package facts, but vet requires the output
	// file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "lamavet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Resolve source import paths to export-data files through the
	// config's vendor/canonical mapping.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamavet: %v\n", err)
		return 1
	}
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	for _, a := range analysis.Suite() {
		if err := a.Run(pkg.Pass(a, report)); err != nil {
			fmt.Fprintf(os.Stderr, "lamavet: %s: %v\n", a.Name, err)
			return 1
		}
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
