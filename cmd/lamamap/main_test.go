package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLevel3(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-np", "24", "-cluster", "2xfig2", "--",
		"--lama-map", "scbnh", "--bind-to", "core"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"process layout:    scbnh",
		"abstraction level: 3",
		"node0:", "socket 1:", "[h1: 12]",
		"binding width (rank 0)", "2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunLevel2Shortcut(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "4", "-cluster", "1xnehalem-ep", "--", "--map-by", "socket"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "abstraction level: 2") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunHostfile(t *testing.T) {
	dir := t.TempDir()
	hf := filepath.Join(dir, "hosts")
	if err := os.WriteFile(hf, []byte("a slots=4 spec=fig2\nb slots=4 spec=fig2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-np", "4", "-hostfile", hf, "--", "--bynode"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a") || !strings.Contains(out.String(), "2 nodes") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunRankfile(t *testing.T) {
	dir := t.TempDir()
	rf := filepath.Join(dir, "ranks")
	if err := os.WriteFile(rf, []byte("rank 0=node0 slot=0\nrank 1=node1 slot=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-np", "2", "-cluster", "2xfig2", "-rankfile", rf}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "abstraction level: 4") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-np", "4", "-cluster", "junk"},                      // bad cluster syntax
		{"-np", "4", "-cluster", "0xfig2"},                    // bad node count
		{"-np", "4", "-cluster", "1xbogus~"},                  // bad spec
		{"-np", "0", "-cluster", "1xfig2"},                    // bad np
		{"-np", "4", "-cluster", "1xfig2", "--", "--nope"},    // bad mpirun arg
		{"-np", "99", "-cluster", "1xfig2"},                   // oversubscribe
		{"-np", "4", "-hostfile", "/does/not/exist"},          // missing hostfile
		{"-np", "4", "-cluster", "1xfig2", "-rankfile", "/x"}, // missing rankfile
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "4", "-cluster", "1xfig2", "-json", "--", "--lama-map", "scbnh"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out.String())
	}
	if decoded["layout"] != "scbnh" {
		t.Fatalf("layout = %v", decoded["layout"])
	}
}

func TestRunEmitRankfile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "4", "-cluster", "1xfig2", "-emit-rankfile", "--", "--lama-map", "scbnh"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "rank 0=node0 slot=0") {
		t.Fatalf("rankfile:\n%s", out.String())
	}
	if strings.Count(out.String(), "\n") != 4 {
		t.Fatalf("want 4 lines:\n%s", out.String())
	}
}

func TestRunTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "4", "-cluster", "1xfig2", "-trace", "6", "--", "--lama-map", "scbnh"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "iteration trace") || !strings.Contains(out.String(), "mapped rank 0") {
		t.Fatalf("trace missing:\n%s", out.String())
	}
	// Trace rejects rankfile mode.
	var bad bytes.Buffer
	err := run([]string{"-np", "1", "-cluster", "1xfig2", "-trace", "3", "--", "--rankfile-text", "rank 0=node0 slot=0"}, &bad)
	if err == nil {
		t.Fatal("trace with rankfile should fail")
	}
}

// TestObservabilityFlags checks the shared -trace-out/-metrics-out wiring:
// the mapping and bind phases land in the report and the trace carries the
// map completion event.
func TestObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.jsonl")
	reportPath := filepath.Join(dir, "m.json")
	var out bytes.Buffer
	err := run([]string{"-np", "24", "-cluster", "2xfig2",
		"-trace-out", tracePath, "-metrics-out", reportPath,
		"--", "--lama-map", "scbnh", "--bind-to", "core"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"src":"map"`) || !strings.Contains(string(trace), `"event":"done"`) {
		t.Fatalf("trace missing map done event:\n%s", trace)
	}
	report, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "runreport/v1"`, `"tool": "lamamap"`,
		`"prune"`, `"build-shape"`, `"sweep"`, `"place"`, `"bind"`,
		`"lama_map_nodes_used"`} {
		if !strings.Contains(string(report), want) {
			t.Fatalf("report missing %s:\n%s", want, report)
		}
	}
}
