// Command lamamap plans process placements the way the paper's mpirun
// integration does: it builds (or loads) a cluster, runs the LAMA (or a
// rankfile) through the four CLI abstraction levels, and prints the map,
// the binding widths, and a Figure 2-style per-node view.
//
// Usage:
//
//	lamamap -np 24 -cluster 2xfig2 -- --lama-map scbnh --bind-to core
//	lamamap -np 24 -hostfile hosts.txt -- --map-by socket
//	lamamap -np 4 -cluster 2xfig2 -rankfile ranks.txt
//
// The -cluster form is "<nodes>x<spec>", where <spec> is a preset name or
// colon form accepted by the topology parser. Arguments after "--" are
// mpirun-style options (see internal/mpirun).
//
// The shared observability flags apply: -trace-out / -metrics-out record
// the run, and -listen serves it live (/metrics, /events, /debug/pprof)
// while it executes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lama/internal/cluster"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/mpirun"
	"lama/internal/netorder"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/place"
	"lama/internal/rankfile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamamap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamamap", flag.ContinueOnError)
	np := fs.Int("np", 0, "number of processes")
	clusterSpec := fs.String("cluster", "2xnehalem-ep", "cluster as <nodes>x<spec>")
	hostfile := fs.String("hostfile", "", "hostfile path (overrides -cluster)")
	rankfilePath := fs.String("rankfile", "", "rankfile path (Level 4)")
	policy := fs.String("policy", "", "placement policy from the registry (see -list-policies)")
	listPolicies := fs.Bool("list-policies", false, "list registered placement policies and exit")
	check := fs.Bool("check", false, "validate the planned map against the cluster and print one ok line")
	patternName := fs.String("pattern", "", "traffic pattern for traffic-aware policies (see internal/commpat)")
	bytesPer := fs.Float64("bytes", 1<<20, "bytes per exchange for -pattern")
	netSpec := fs.String("net", "", "network model for network-aware post-passes: flat, fat-tree[:leaf], dragonfly[:group], torus[:XxYxZ] (needs -pattern)")
	netRefine := fs.Bool("net-refine", false, "add delta-J pairwise-swap refinement after the -net node ordering")
	seed := fs.Int64("seed", 1, "seed for randomized policies")
	byNode := fs.Bool("render-by-node", true, "print the Figure 2-style per-node view")
	asJSON := fs.Bool("json", false, "emit the map as JSON and exit")
	emitRankfile := fs.Bool("emit-rankfile", false, "emit the map as a Level 4 rankfile and exit")
	trace := fs.Int("trace", 0, "print the first N mapping-iteration events (Levels 1-3)")
	obsFlags := obs.RegisterFlags(fs)
	version := obs.RegisterVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(out, "lamamap")
		return nil
	}
	if *listPolicies {
		for _, name := range place.Names() {
			fmt.Fprintln(out, name)
		}
		return nil
	}

	c, err := buildCluster(*clusterSpec, *hostfile)
	if err != nil {
		return err
	}
	o, closeObs, err := obsFlags.Observer(os.Stderr)
	if err != nil {
		return err
	}

	mpiArgs := []string{"-np", strconv.Itoa(*np)}
	if *rankfilePath != "" {
		text, err := os.ReadFile(*rankfilePath)
		if err != nil {
			return err
		}
		mpiArgs = append(mpiArgs, "--rankfile-text", string(text))
	}
	if *policy != "" {
		mpiArgs = append(mpiArgs, "--policy", *policy)
	}
	mpiArgs = append(mpiArgs, fs.Args()...)

	req, err := mpirun.Parse(mpiArgs)
	if err != nil {
		return err
	}
	req.Opts.Obs = o
	req.Seed = *seed
	if *patternName != "" {
		gen, ok := commpat.ByName(*patternName)
		if !ok {
			return fmt.Errorf("unknown pattern %q (see commpat.Patterns)", *patternName)
		}
		req.Traffic = gen(req.NP, *bytesPer)
	}
	if *netSpec != "" {
		if req.Traffic == nil {
			return fmt.Errorf("-net requires -pattern (the passes need a traffic matrix)")
		}
		net, err := netsim.ParseNetwork(*netSpec, c.NumNodes())
		if err != nil {
			return err
		}
		req.Stages = append(req.Stages, &netorder.Stage{Net: net})
		if *netRefine {
			req.Stages = append(req.Stages, &netorder.Refine{Net: net})
		}
	} else if *netRefine {
		return fmt.Errorf("-net-refine requires -net")
	}
	res, err := mpirun.Execute(context.Background(), req, c)
	if err != nil {
		return err
	}
	metrics.Summarize(c, res.Map).Record(o.Reg())
	finishObs := func() error {
		if err := closeObs(); err != nil {
			return err
		}
		return obsFlags.WriteReport(o.Report("lamamap", map[string]any{
			"np": req.NP, "cluster": *clusterSpec, "level": req.Level,
			"policy": req.PolicyName(), "layout": req.Layout.String(),
			"bind": req.BindPolicy.String(),
		}))
	}

	if *check {
		if err := res.Map.Validate(c); err != nil {
			return err
		}
		fmt.Fprintf(out, "ok: policy %s placed %d ranks on %d nodes\n",
			req.PolicyName(), res.Map.NumRanks(), len(res.Map.RanksByNode()))
		return finishObs()
	}
	if *asJSON {
		data, err := json.MarshalIndent(res.Map, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return finishObs()
	}
	if *emitRankfile {
		f, err := rankfile.FromMap(res.Map)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rankfile.Format(f))
		return finishObs()
	}

	fmt.Fprintf(out, "cluster:\n%s\n", c.Summary())
	fmt.Fprintf(out, "abstraction level: %d\n", req.Level)
	if req.Level != 4 {
		fmt.Fprintf(out, "process layout:    %s\n", req.Layout)
	}
	fmt.Fprintf(out, "binding:           %s\n\n", req.BindPolicy)
	fmt.Fprint(out, res.Map.Render())
	if *byNode {
		fmt.Fprintf(out, "\n%s", res.Map.RenderByNode(c))
	}
	if req.ReportBindings {
		fmt.Fprintf(out, "\nbindings:\n%s", res.Plan.Render(c))
	}
	if *trace > 0 {
		if req.Level == 4 {
			return fmt.Errorf("-trace requires a LAMA mapping (Levels 1-3)")
		}
		mapper, err := core.NewMapper(c, req.Layout, req.Opts)
		if err != nil {
			return err
		}
		_, events, err := mapper.MapTraced(req.NP, *trace)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\niteration trace (first %d events):\n", len(events))
		for _, e := range events {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}

	s := metricsSummary(c, res)
	fmt.Fprintf(out, "\n%s", s)
	return finishObs()
}

func buildCluster(spec, hostfile string) (*cluster.Cluster, error) {
	if hostfile != "" {
		text, err := os.ReadFile(hostfile)
		if err != nil {
			return nil, err
		}
		def, _ := hw.Preset("nehalem-ep")
		return cluster.ParseHostfile(string(text), def)
	}
	nStr, specStr, ok := strings.Cut(spec, "x")
	if !ok {
		return nil, fmt.Errorf("bad -cluster %q: want <nodes>x<spec>", spec)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("bad node count in -cluster %q", spec)
	}
	sp, err := hw.ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	return cluster.Homogeneous(n, sp), nil
}

func metricsSummary(c *cluster.Cluster, res *mpirun.Result) string {
	t := metrics.NewTable("summary", "metric", "value")
	per := res.Map.RanksByNode()
	t.AddRow("ranks", metrics.I(res.Map.NumRanks()))
	t.AddRow("nodes used", metrics.I(len(per)))
	t.AddRow("oversubscribed", fmt.Sprint(res.Map.Oversubscribed()))
	t.AddRow("sweeps", metrics.I(res.Map.Sweeps))
	if len(res.Plan.Bindings) > 0 {
		t.AddRow("binding width (rank 0)", metrics.I(res.Plan.Bindings[0].Width))
	}
	return t.String()
}
