package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lama/internal/engine"
)

func testServer(t *testing.T) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng, handler, err := buildDaemon("smoke=4xnehalem-ep", "", engine.Config{
		Workers: 4, QueueDepth: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return eng, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestLamadSmoke is the CI smoke scenario: 100 concurrent placements
// against the daemon's HTTP surface, cache hit counters verified through
// /metrics.json, then a failure event that swaps the snapshot and forces
// the next placement cold on the new epoch.
func TestLamadSmoke(t *testing.T) {
	_, ts := testServer(t)
	placeURL := ts.URL + "/v1/place"
	req := map[string]any{"cluster": "smoke", "np": 32, "layout": "csbnh"}

	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, placeURL, req)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var out struct {
				Epoch      uint64 `json:"epoch"`
				NP         int    `json:"np"`
				Placements []struct {
					Rank int   `json:"rank"`
					Node int   `json:"node"`
					PUs  []int `json:"pus"`
				} `json:"placements"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				errs <- err
				return
			}
			if out.NP != 32 || len(out.Placements) != 32 || out.Epoch != 1 {
				errs <- fmt.Errorf("bad response: np=%d placements=%d epoch=%d",
					out.NP, len(out.Placements), out.Epoch)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	hits, misses := cacheCounters(t, ts)
	if hits+misses != 100 {
		t.Fatalf("hits+misses = %d+%d, want 100", hits, misses)
	}
	if hits == 0 {
		t.Fatal("no cache hits across 100 identical requests")
	}

	// Cluster listing reflects the registered snapshot.
	resp, err := http.Get(ts.URL + "/v1/clusters")
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Name  string `json:"name"`
		Epoch uint64 `json:"epoch"`
		Nodes int    `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 1 || rows[0].Name != "smoke" || rows[0].Epoch != 1 || rows[0].Nodes != 4 {
		t.Fatalf("clusters = %+v", rows)
	}

	// A failure event mints epoch 2 and purges the cached placement.
	resp, body := postJSON(t, ts.URL+"/v1/clusters/smoke/events",
		map[string]any{"type": "fail-node", "node": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("event status %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		Epoch  uint64 `json:"epoch"`
		Purged int    `json:"purged"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Epoch != 2 || ack.Purged != 1 {
		t.Fatalf("event ack = %+v, want epoch 2, purged 1", ack)
	}

	resp, body = postJSON(t, placeURL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap place status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Epoch      uint64 `json:"epoch"`
		Cached     bool   `json:"cached"`
		Placements []struct {
			Node int `json:"node"`
		} `json:"placements"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 2 || out.Cached {
		t.Fatalf("post-swap place: epoch=%d cached=%v", out.Epoch, out.Cached)
	}
	for _, p := range out.Placements {
		if p.Node == 1 {
			t.Fatal("placed on failed node 1")
		}
	}
}

// cacheCounters scrapes /metrics.json the way the CI smoke job does.
func cacheCounters(t *testing.T, ts *httptest.Server) (hits, misses int64) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters["lama_engine_cache_hits_total"], snap.Counters["lama_engine_cache_misses_total"]
}

func TestLamadErrorStatuses(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/place", map[string]any{"cluster": "nope", "np": 4})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cluster status = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/place", map[string]any{"cluster": "smoke", "np": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("np=0 status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/place", map[string]any{"cluster": "smoke", "np": 4, "epoch": 9})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch status = %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/clusters/smoke/events", map[string]any{"type": "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad event status = %d, want 400", resp.StatusCode)
	}
}

func TestLamadBuildErrors(t *testing.T) {
	for _, def := range []string{"noequals", "bad=3yfig2", "bad=0xfig2", ""} {
		if _, _, err := buildDaemon(def, "", engine.Config{}); err == nil {
			t.Errorf("buildDaemon(%q) accepted", def)
		}
	}
	if _, _, err := buildDaemon("a=2xnehalem-ep", "no-such-net", engine.Config{}); err == nil {
		t.Error("bad -net accepted")
	}
}

func TestLamadVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "lamad go") {
		t.Fatalf("version output = %q", buf.String())
	}
}
