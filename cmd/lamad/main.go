// Command lamad is the placement daemon: the paper's mapping algorithm
// served as a long-running service instead of a per-job library call.
// It registers one or more clusters as immutable snapshots, mounts the
// placement engine's /v1 API next to the shared telemetry surface, and
// serves both from a single port:
//
//	lamad -listen :8080 -clusters prod=256xnehalem-ep,dev=4xfig2
//
//	curl -s localhost:8080/v1/clusters
//	curl -s -X POST localhost:8080/v1/place \
//	     -d '{"cluster":"prod","np":4096,"layout":"csbnh"}'
//	curl -s -X POST localhost:8080/v1/clusters/prod/events \
//	     -d '{"type":"fail-node","node":17}'
//
// Placements are cached per snapshot signature; a mutation event swaps
// the cluster's snapshot copy-on-write (in-flight requests keep the one
// they started with) and purges only that cluster's stale cache entries.
// /metrics, /metrics.json, /events, and /debug/pprof come from the same
// obs.Server every CLI shares, so the daemon is scrapeable and
// profileable out of the box.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"lama/internal/cluster"
	"lama/internal/engine"
	"lama/internal/hw"
	"lama/internal/netsim"
	"lama/internal/obs"

	_ "lama/internal/place/all"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamad:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamad", flag.ContinueOnError)
	listen := fs.String("listen", ":8080", "host:port the daemon binds (port 0 picks a free one)")
	clusters := fs.String("clusters", "default=4xnehalem-ep", "comma-separated name=<nodes>x<spec> cluster definitions")
	netSpec := fs.String("net", "", "network model attached to every cluster: flat, fat-tree[:leaf], dragonfly[:group], torus[:XxYxZ]")
	workers := fs.Int("workers", 0, "placement worker pool size (0 = 4)")
	queue := fs.Int("queue", 0, "admission queue depth before requests are shed (0 = 4x workers)")
	cacheSize := fs.Int("cache", 0, "placement cache entries, -1 disables (0 = 1024)")
	version := obs.RegisterVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(out, "lamad")
		return nil
	}

	eng, handler, err := buildDaemon(*clusters, *netSpec, engine.Config{
		Workers: *workers, QueueDepth: *queue, CacheSize: *cacheSize,
	})
	if err != nil {
		return err
	}

	srv, err := newHTTPServer(*listen, handler)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lamad: serving placements on http://%s\n", srv.addr)
	for _, name := range eng.Clusters() {
		s := eng.Snapshot(name)
		fmt.Fprintf(out, "lamad: cluster %s: %d nodes, epoch %d, sig %s\n",
			name, s.Clu.NumNodes(), s.Clu.Epoch(), s.Clu.Sig())
	}
	return srv.serve()
}

// buildDaemon assembles the daemon's engine and HTTP surface: the
// placement /v1 API mounted next to the always-on telemetry plane (the
// engine's counters, the event ring, and the pprof endpoints all share
// the placement port).
func buildDaemon(clusters, netSpec string, cfg engine.Config) (*engine.Engine, http.Handler, error) {
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	ring := obs.NewRingSink(obs.DefaultRingCapacity)
	ring.DropCounter = reg.Counter("lama_obs_events_dropped_total")
	o := &obs.Observer{Metrics: reg, Sink: ring, Phases: obs.NewPhaseTimer()}
	o.Phases.EnablePprofLabels()

	cfg.Obs = o
	eng := engine.New(cfg)
	if err := registerClusters(eng, clusters, netSpec); err != nil {
		return nil, nil, err
	}

	telemetry := obs.NewServer(reg, ring)
	telemetry.Tool = "lamad"
	mux := http.NewServeMux()
	eng.Mount(mux)
	mux.Handle("/", telemetry.Handler())
	return eng, mux, nil
}

// registerClusters parses "name=<nodes>x<spec>,..." and publishes each as
// a snapshot, attaching -net distances sized to the cluster.
func registerClusters(eng *engine.Engine, defs, netSpec string) error {
	for _, def := range strings.Split(defs, ",") {
		def = strings.TrimSpace(def)
		if def == "" {
			continue
		}
		name, spec, ok := strings.Cut(def, "=")
		if !ok {
			return fmt.Errorf("bad -clusters entry %q: want name=<nodes>x<spec>", def)
		}
		c, err := buildCluster(spec)
		if err != nil {
			return fmt.Errorf("cluster %q: %v", name, err)
		}
		snap := &engine.Snapshot{Clu: cluster.SnapshotOf(c)}
		if netSpec != "" {
			net, err := netsim.ParseNetwork(netSpec, c.NumNodes())
			if err != nil {
				return fmt.Errorf("cluster %q: %v", name, err)
			}
			dist, err := netsim.NewDistances(net, c.NumNodes())
			if err != nil {
				return fmt.Errorf("cluster %q: %v", name, err)
			}
			snap.Net = dist
		}
		if err := eng.Register(name, snap); err != nil {
			return err
		}
	}
	if len(eng.Clusters()) == 0 {
		return fmt.Errorf("no clusters defined")
	}
	return nil
}

// buildCluster parses "<nodes>x<spec>" exactly like lamamap's -cluster.
func buildCluster(spec string) (*cluster.Cluster, error) {
	nStr, specStr, ok := strings.Cut(spec, "x")
	if !ok {
		return nil, fmt.Errorf("bad cluster %q: want <nodes>x<spec>", spec)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("bad node count in %q", spec)
	}
	sp, err := hw.ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	return cluster.Homogeneous(n, sp), nil
}
