package main

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
)

// httpServer binds eagerly (so -listen :0 can report its picked port
// before serving) and runs until the listener fails or a shutdown signal
// arrives.
type httpServer struct {
	addr string
	ln   net.Listener
	srv  *http.Server
}

func newHTTPServer(addr string, h http.Handler) (*httpServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-listen %s: %v", addr, err)
	}
	return &httpServer{
		addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: h},
	}, nil
}

func (s *httpServer) serve() error {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	errc := make(chan error, 1)
	go func() { errc <- s.srv.Serve(s.ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigc:
		return s.srv.Close()
	}
}
