package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/core"
	"lama/internal/faultaware"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/obs"
	"lama/internal/orte"
	"lama/internal/place"
	"lama/internal/rm"
)

// churnConfig parameterizes the long-horizon churn scenario.
type churnConfig struct {
	spec           string
	np, nodes      int
	layout, policy string
	spares         int
	pool           int
	steps          int
	mtbf           float64
	seed           int64
	detect         int
	chassisSize    int
	rackSize       int
	resizePeriod   int
	resizeDelta    int
	critical       int
	maxRestarts    int
	stepDelay      time.Duration
}

// runChurn is the long-horizon elasticity-under-failures scenario: a pool
// with a failure-domain model, a job placed through the fault-aware
// pipeline stage, and a supervised run whose injection plan combines
// MTBF-driven whole-node failures (riskier nodes fail sooner) with
// periodic alternating grow/shrink resizes. Every recovery and resize is
// folded into step-indexed recovered-locality, migration-cost, and
// world-size curves in the run report, so the proactive placement and
// topology-aware spare machinery can be judged over thousands of steps
// rather than a single failure.
func runChurn(out io.Writer, sp hw.Spec, obsFlags *obs.CLIFlags, o *obs.Observer,
	closeObs func() error, cfg churnConfig) error {
	layout, err := core.ParseLayout(cfg.layout)
	if err != nil {
		return err
	}
	poolN := cfg.pool
	if poolN <= 0 {
		// Default headroom: spares plus a few free nodes for realloc once
		// the spare pool runs dry.
		poolN = cfg.nodes + cfg.spares + 4
	}
	if poolN < cfg.nodes+cfg.spares {
		return fmt.Errorf("-pool %d smaller than -nodes %d + -spares %d", poolN, cfg.nodes, cfg.spares)
	}
	pool := cluster.Homogeneous(poolN, sp)
	pool.AttachFaultModel(cfg.chassisSize, cfg.rackSize, cfg.seed)
	mgr := rm.NewManager(pool)
	mgr.Obs = o
	slots := cfg.nodes * usableCores(pool.Node(0))
	alloc, err := mgr.AllocWithSpares(rm.WholeNode, slots, cfg.spares)
	if err != nil {
		return err
	}
	granted := alloc.Granted

	// Initial placement through the pipeline: the chosen policy followed
	// by the fault-aware critical-rank spread.
	pol, ok := place.Lookup(cfg.policy)
	if !ok {
		return fmt.Errorf("unknown placement policy %q for -churn", cfg.policy)
	}
	var stages []place.Stage
	var spread *faultaware.Result
	crit := make([]int, 0, cfg.critical)
	for r := 0; r < cfg.critical && r < cfg.np; r++ {
		crit = append(crit, r)
	}
	if len(crit) > 0 {
		stages = append(stages, &faultaware.Stage{
			Critical: crit,
			OnResult: func(r *faultaware.Result) { spread = r },
		})
	}
	pl := &place.Pipeline{Policy: pol, Stages: stages}
	m, err := pl.Run(context.Background(), &place.Request{
		Cluster: granted, NP: cfg.np, Layout: layout, Seed: cfg.seed,
		Opts: core.Options{Obs: o},
	})
	if err != nil {
		return err
	}

	sup := &orte.Supervisor{
		Runtime:    orte.NewRuntime(granted),
		Layout:     layout,
		Opts:       core.Options{Obs: o},
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		InitialMap: m,
		Config: orte.SuperviseConfig{
			Policy:          orte.FTRespawn,
			MaxRestarts:     cfg.maxRestarts,
			DetectionWindow: cfg.detect,
			StepDelay:       cfg.stepDelay,
		},
		SpareProvider: func(failedNode int) (int, error) {
			res, err := mgr.Realloc(alloc, granted.Nodes[failedNode].Name,
				rm.RetryConfig{Obs: o})
			if err != nil {
				return -1, err
			}
			return res.GrantedIndex, nil
		},
	}

	mtbf := cfg.mtbf
	if mtbf <= 0 {
		// Default: an average node survives about twice the horizon, so a
		// handful of the riskier nodes fail during the run.
		mtbf = 2 * float64(cfg.steps)
	}
	nodeFails, err := orte.NodeMTBFSchedule(cfg.seed, granted, cfg.steps, mtbf)
	if err != nil {
		return err
	}
	plan := orte.InjectionPlan{NodeFailures: nodeFails}
	if cfg.resizePeriod > 0 {
		delta := cfg.resizeDelta
		if delta <= 0 {
			delta = maxOf(1, cfg.np/8)
		}
		for i, t := 0, cfg.resizePeriod; t < cfg.steps; i, t = i+1, t+cfg.resizePeriod {
			d := delta
			if i%2 == 1 {
				d = -delta
			}
			plan.Resizes = append(plan.Resizes, orte.ResizeEvent{Step: t, Delta: d})
		}
	}

	fmt.Fprintf(out, "churn: pool %d x %s (%d-node chassis, %d-chassis racks), job %d nodes + %d spares, np=%d, steps=%d, mtbf=%.0f\n",
		poolN, cfg.spec, cfg.chassisSize, cfg.rackSize, cfg.nodes, cfg.spares, cfg.np, cfg.steps, mtbf)
	if spread != nil {
		fmt.Fprintf(out, "fault-aware spread: %d critical ranks over %d->%d chassis (%d swaps, locality %.3f -> %.3f)\n",
			len(spread.Critical), spread.ChassisBefore, spread.ChassisAfter,
			spread.Swaps, spread.LocalityBefore, spread.LocalityAfter)
	}
	fmt.Fprintf(out, "schedule: %d node failures, %d resizes\n\n", len(nodeFails), len(plan.Resizes))

	rep, err := sup.Run(cfg.np, cfg.steps, plan)
	if err != nil {
		return err
	}
	series := churnSeries(cfg.np, rep.Events)
	for _, ev := range rep.Events {
		fmt.Fprintf(out, "step %4d: %-8s", ev.DetectedStep, ev.Action)
		switch ev.Action {
		case "grow", "release":
			fmt.Fprintf(out, " delta %+d", ev.Delta)
		default:
			fmt.Fprintf(out, " failure from step %d, ranks %v", ev.FailStep, ev.Ranks)
		}
		if ev.Action == "respawn" {
			fmt.Fprintf(out, " (moved %d, replayed %d, locality %.3f -> %.3f)",
				ev.RanksMoved, ev.ReplaySteps, ev.LocalityBefore, ev.LocalityAfter)
		}
		if ev.Reason != "" {
			fmt.Fprintf(out, ": %s", ev.Reason)
		}
		fmt.Fprintln(out)
	}
	if len(rep.Events) > 0 {
		fmt.Fprintln(out)
	}
	rsum := metrics.SummarizeRecovery(rep)
	fmt.Fprintln(out, rsum.Render())
	rsum.Record(o.Reg())
	if rep.Map != nil {
		metrics.Summarize(granted, rep.Map).Record(o.Reg())
	}
	if err := closeObs(); err != nil {
		return err
	}
	report := o.Report("lamasim", map[string]any{
		"scenario": "churn", "np": cfg.np, "nodes": cfg.nodes, "pool": poolN,
		"spec": cfg.spec, "layout": cfg.layout, "policy": cfg.policy,
		"spares": cfg.spares, "steps": cfg.steps, "mtbf": mtbf,
		"seed": cfg.seed, "chassisSize": cfg.chassisSize, "rackSize": cfg.rackSize,
		"resizePeriod": cfg.resizePeriod, "critical": cfg.critical,
		"detectionWindow": rep.DetectionWindow,
	})
	report.Recovery = recoveryTimeline(rep.Events)
	report.Series = series
	return obsFlags.WriteReport(report)
}

// churnSeries folds the supervisor's event stream into the three curves
// the churn report carries: recovered locality (neighbor locality after
// each recovery or resize), cumulative migration cost (placements moved
// plus steps replayed), and world size.
func churnSeries(np int, events []orte.RecoveryEvent) map[string][]obs.SeriesPoint {
	var locality, cost, world []obs.SeriesPoint
	moved, size := 0, np
	world = append(world, obs.SeriesPoint{Step: 0, Value: float64(size)})
	for _, ev := range events {
		switch ev.Action {
		case "respawn":
			moved += ev.RanksMoved + ev.ReplaySteps
			locality = append(locality, obs.SeriesPoint{Step: ev.DetectedStep, Value: ev.LocalityAfter})
		case "grow", "release":
			if ev.Reason == "" { // applied, not rejected
				size += ev.Delta
				locality = append(locality, obs.SeriesPoint{Step: ev.DetectedStep, Value: ev.LocalityAfter})
				world = append(world, obs.SeriesPoint{Step: ev.DetectedStep, Value: float64(size)})
			}
		case "shrink":
			// FTShrink survivors keep running; nothing moves.
		}
		cost = append(cost, obs.SeriesPoint{Step: ev.DetectedStep, Value: float64(moved)})
	}
	return map[string][]obs.SeriesPoint{
		"recovered_locality": locality,
		"migration_cost":     cost,
		"world_size":         world,
	}
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
