// Command lamasim evaluates mappings: it maps a job several ways (LAMA
// layouts, baselines, traffic-aware), costs a chosen traffic pattern on a
// chosen network model, and reports either static communication metrics,
// BSP application iteration times, or MPI collective completion times.
//
// Usage:
//
//	lamasim -np 64 -nodes 8 -spec nehalem-ep -pattern stencil2d -net fat-tree
//	lamasim -np 64 -nodes 8 -pattern gtc -net torus -mode app -compute 500
//	lamasim -np 16 -nodes 8 -mode coll -bytes 1048576
//
// With -ft it instead runs a supervised (fault-tolerant) job and reports
// the recovery pipeline's metrics:
//
//	lamasim -np 64 -nodes 8 --ft=respawn --spares=1 -fail-node 0 -fail-step 10
//
// With -listen the run serves its telemetry live while it executes
// (/metrics, /metrics.json, /events, /debug/pprof); combine with
// -step-delay to stretch a churn run long enough to scrape:
//
//	lamasim -churn -steps 2000 -step-delay 10ms -listen 127.0.0.1:8321
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"lama/internal/appsim"
	"lama/internal/bind"
	"lama/internal/cluster"
	"lama/internal/coll"
	"lama/internal/commpat"
	"lama/internal/core"
	"lama/internal/hw"
	"lama/internal/metrics"
	"lama/internal/msgsim"
	"lama/internal/netorder"
	"lama/internal/netsim"
	"lama/internal/obs"
	"lama/internal/orte"
	"lama/internal/place"
	_ "lama/internal/place/all" // link every built-in policy for -policy
	"lama/internal/rankfile"
	"lama/internal/rm"
	"lama/internal/torus"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lamasim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lamasim", flag.ContinueOnError)
	np := fs.Int("np", 64, "number of processes")
	nodes := fs.Int("nodes", 8, "number of nodes")
	spec := fs.String("spec", "nehalem-ep", "node spec (preset or colon form)")
	patternName := fs.String("pattern", "stencil2d", "traffic pattern (see internal/commpat)")
	trafficPath := fs.String("traffic", "", "traffic matrix file (edge list; overrides -pattern)")
	bytesPer := fs.Float64("bytes", 1<<20, "bytes per exchange")
	netName := fs.String("net", "flat", "network model: flat | fat-tree[:leaf] | torus[:XxYxZ] | dragonfly[:group]")
	netRefine := fs.Bool("net-refine", false, "wrap every strategy with network-aware node ordering + delta-J swap refinement")
	policyList := fs.String("policy", "", `comma-separated placement policies to compare, or "all" for every registered one (default: LAMA layouts + treematch + random)`)
	mode := fs.String("mode", "static", "report: static | app | coll | fluid")
	compute := fs.Float64("compute", 500, "per-iteration compute time in us (mode app)")
	iters := fs.Int("iters", 1000, "iterations (mode app)")
	ft := fs.String("ft", "", "fault-tolerance policy: abort | shrink | respawn (runs a supervised job)")
	layout := fs.String("layout", "csbnh", "LAMA layout for the supervised run (-ft)")
	spares := fs.Int("spares", 0, "whole spare nodes to reserve (-ft)")
	maxRestarts := fs.Int("max-restarts", 1, "respawn budget, negative = unlimited (-ft)")
	steps := fs.Int("steps", 50, "virtual scheduler steps (-ft)")
	stepDelay := fs.Duration("step-delay", 0, "wall-clock sleep per virtual step (-ft/-churn), so -listen scrapers can watch the run live")
	failNode := fs.Int("fail-node", -1, "inject: fail this node at -fail-step (-ft)")
	failRank := fs.Int("fail-rank", -1, "inject: crash this rank at -fail-step (-ft)")
	failStep := fs.Int("fail-step", 10, "inject: failure step (-ft)")
	mtbf := fs.Float64("mtbf", 0, "inject: per-rank exponential MTBF in steps, 0 = off (-ft); per-node MTBF for -churn (0 = 2x horizon)")
	seed := fs.Int64("seed", 1, "rng seed for -mtbf")
	detect := fs.Int("detect", 0, "detection window in steps, 0 = routed-tree default (-ft)")
	churn := fs.Bool("churn", false, "run the long-horizon churn scenario: fault-aware placement, MTBF node failures, periodic grow/shrink")
	poolSize := fs.Int("pool", 0, "pool size in nodes for -churn (0 = nodes+spares+4)")
	churnPolicy := fs.String("churn-policy", "lama", "placement policy the churn pipeline starts from")
	chassisSize := fs.Int("chassis-size", 2, "nodes per chassis in the failure-domain model (-churn)")
	rackSize := fs.Int("rack-size", 2, "chassis per rack in the failure-domain model (-churn)")
	resizePeriod := fs.Int("resize-period", 0, "steps between alternating grow/shrink resizes, 0 = off (-churn)")
	resizeDelta := fs.Int("resize-delta", 0, "ranks per resize, 0 = np/8 (-churn)")
	critical := fs.Int("critical", 0, "number of leading ranks to spread across failure domains (-churn)")
	validate := fs.String("validate", "", "validate observability outputs instead of running: comma-separated paths (.jsonl = event trace, otherwise runreport JSON)")
	obsFlags := obs.RegisterFlags(fs)
	version := obs.RegisterVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		obs.PrintVersion(out, "lamasim")
		return nil
	}
	if *validate != "" {
		return runValidate(out, *validate)
	}

	sp, err := hw.ParseSpec(*spec)
	if err != nil {
		return err
	}
	o, closeObs, err := obsFlags.Observer(os.Stderr)
	if err != nil {
		return err
	}
	if *churn {
		return runChurn(out, sp, obsFlags, o, closeObs, churnConfig{
			spec: *spec, np: *np, nodes: *nodes, layout: *layout,
			policy: *churnPolicy, spares: *spares, pool: *poolSize,
			steps: *steps, mtbf: *mtbf, seed: *seed, detect: *detect,
			chassisSize: *chassisSize, rackSize: *rackSize,
			resizePeriod: *resizePeriod, resizeDelta: *resizeDelta,
			critical: *critical, maxRestarts: *maxRestarts,
			stepDelay: *stepDelay,
		})
	}
	if *ft != "" {
		return runFT(out, sp, obsFlags, o, closeObs, ftConfig{
			spec: *spec, np: *np, nodes: *nodes, layout: *layout,
			policy: *ft, spares: *spares, maxRestarts: *maxRestarts,
			steps: *steps, failNode: *failNode, failRank: *failRank,
			failStep: *failStep, mtbf: *mtbf, seed: *seed, detect: *detect,
			stepDelay: *stepDelay,
		})
	}
	c := cluster.Homogeneous(*nodes, sp)

	var net netsim.Network
	switch *netName {
	case "flat":
		net = netsim.NewFlat()
	case "fat-tree":
		net = netsim.NewFatTree(4)
	case "torus":
		d := torusDims(*nodes)
		net = netsim.NewTorus3D(d)
	case "dragonfly":
		net = netsim.NewDragonfly(4)
	default:
		// Parameterized specs (fat-tree:8, dragonfly:2, torus:4x2x1) go
		// through the shared parser; the bare names above keep their
		// legacy constructors (notably "torus" and its Grid3D dims).
		net, err = netsim.ParseNetwork(*netName, *nodes)
		if err != nil {
			return err
		}
	}
	model := netsim.NewModel(net)

	var tm *commpat.Matrix
	if *trafficPath != "" {
		text, err := os.ReadFile(*trafficPath)
		if err != nil {
			return err
		}
		tm, err = commpat.ParseMatrix(string(text))
		if err != nil {
			return err
		}
		if tm.Ranks() != *np {
			return fmt.Errorf("traffic file has %d ranks but -np is %d", tm.Ranks(), *np)
		}
		*patternName = *trafficPath
	} else {
		for _, p := range commpat.Patterns() {
			if p.Name == *patternName {
				tm = p.Gen(*np, *bytesPer)
			}
		}
		if tm == nil {
			return fmt.Errorf("unknown pattern %q (see commpat.Patterns)", *patternName)
		}
	}

	strategies := []strategy{
		{"lama csbnh (pack)", lamaGen(c, "csbnh", *np, o)},
		{"lama ncsbh (cycle)", lamaGen(c, "ncsbh", *np, o)},
		{"lama scbnh (sockets)", lamaGen(c, "scbnh", *np, o)},
		{"lama hcsbn (threads)", lamaGen(c, "hcsbn", *np, o)},
		{"treematch", policyGen("treematch", &place.Request{Cluster: c, NP: *np, Traffic: tm})},
		{"random", policyGen("random", &place.Request{Cluster: c, NP: *np, Seed: 1})},
	}
	if *policyList != "" {
		strategies, err = policyStrategies(*policyList, c, *np, tm, torusDims(*nodes), *seed)
		if err != nil {
			return err
		}
	}
	if *netRefine {
		stm := tm.Sparse()
		for i := range strategies {
			s := strategies[i]
			strategies[i] = strategy{s.name + "+net", func() (*core.Map, error) {
				m, err := s.gen()
				if err != nil {
					return nil, err
				}
				m, _, err = netorder.OrderNodes(c, model, stm, m)
				if err != nil {
					return nil, err
				}
				m, _, err = netorder.RefineMap(c, model, stm, m, 0)
				return m, err
			}}
		}
	}

	fmt.Fprintf(out, "cluster: %d x %s (%d usable PUs), network %s, pattern %s, np=%d\n\n",
		*nodes, *spec, c.TotalUsablePUs(), net.Name(), *patternName, *np)

	switch *mode {
	case "static":
		t := metrics.NewTable("static communication metrics",
			"strategy", "total (ms)", "inter-node MB", "avg hops", "max link MB")
		for _, s := range strategies {
			m, err := s.gen()
			if err != nil {
				return err
			}
			rep, err := model.Evaluate(c, m, tm)
			if err != nil {
				return err
			}
			t.AddRow(s.name, metrics.F(rep.TotalTime/1000, 3),
				metrics.F(rep.InterBytes/1e6, 1), metrics.F(rep.AvgHops, 2),
				metrics.F(rep.MaxLinkLoad/1e6, 2))
		}
		fmt.Fprintln(out, t.String())
	case "app":
		t := metrics.NewTable(
			fmt.Sprintf("BSP application, %d iterations x %.0f us compute", *iters, *compute),
			"strategy", "iteration (us)", "comm share", "bound by")
		for _, s := range strategies {
			m, err := s.gen()
			if err != nil {
				return err
			}
			res, err := appsim.Run(c, m, model, tm, appsim.Config{ComputeUs: *compute, Iterations: *iters})
			if err != nil {
				return err
			}
			t.AddRow(s.name, metrics.F(res.IterUs, 1),
				metrics.F(res.CommUs/res.IterUs*100, 1)+"%", res.BoundBy)
		}
		fmt.Fprintln(out, t.String())
	case "coll":
		t := metrics.NewTable("collective completion times (ms)",
			"strategy", "broadcast", "allreduce-rd", "allreduce-ring", "alltoall", "barrier")
		for _, s := range strategies {
			m, err := s.gen()
			if err != nil {
				return err
			}
			row := []string{s.name}
			for _, op := range []coll.Op{coll.Broadcast, coll.AllreduceRD,
				coll.AllreduceRing, coll.Alltoall, coll.Barrier} {
				res, err := coll.Run(op, c, m, model, *bytesPer)
				if err != nil {
					return err
				}
				row = append(row, metrics.F(res.TimeUs/1000, 3))
			}
			t.AddRow(row...)
		}
		fmt.Fprintln(out, t.String())
	case "fluid":
		t := metrics.NewTable("flow-level fluid simulation (max-min fair sharing)",
			"strategy", "makespan (ms)", "events")
		msgs := msgsim.FromMatrix(tm)
		for _, s := range strategies {
			m, err := s.gen()
			if err != nil {
				return err
			}
			res, err := msgsim.Run(c, m, model, msgs)
			if err != nil {
				return err
			}
			t.AddRow(s.name, metrics.F(res.Makespan/1000, 3), metrics.I(res.Events))
		}
		fmt.Fprintln(out, t.String())
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err := closeObs(); err != nil {
		return err
	}
	return obsFlags.WriteReport(o.Report("lamasim", map[string]any{
		"np": *np, "nodes": *nodes, "spec": *spec, "pattern": *patternName,
		"net": *netName, "mode": *mode,
	}))
}

// strategy pairs a display name with a map generator.
type strategy struct {
	name string
	gen  func() (*core.Map, error)
}

// policyGen resolves one registry policy lazily.
func policyGen(name string, req *place.Request) func() (*core.Map, error) {
	return func() (*core.Map, error) { return place.Place(context.Background(), name, req) }
}

// policyStrategies builds the comparison set from -policy: a comma list of
// registered policy names, or "all" for every registered one. The
// "rankfile" policy gets its text synthesized from the by-slot placement,
// so every policy is runnable from one invocation.
func policyStrategies(list string, c *cluster.Cluster, np int, tm *commpat.Matrix,
	d torus.Dims, seed int64) ([]strategy, error) {
	names := strings.Split(list, ",")
	if list == "all" {
		names = place.Names()
	}
	var out []strategy
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		req := &place.Request{
			Cluster: c, NP: np, Traffic: tm, Seed: seed,
			TorusDims: [3]int{d.X, d.Y, d.Z},
		}
		if name == "rankfile" {
			base, err := place.Place(context.Background(), "by-slot", &place.Request{Cluster: c, NP: np})
			if err != nil {
				return nil, err
			}
			f, err := rankfile.FromMap(base)
			if err != nil {
				return nil, err
			}
			req.RankfileText = rankfile.Format(f)
		}
		out = append(out, strategy{name, policyGen(name, req)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-policy %q selects no policies", list)
	}
	return out, nil
}

func lamaGen(c *cluster.Cluster, layout string, np int, o *obs.Observer) func() (*core.Map, error) {
	return func() (*core.Map, error) {
		m, err := core.NewMapper(c, core.MustParseLayout(layout), core.Options{Obs: o})
		if err != nil {
			return nil, err
		}
		return m.Map(np)
	}
}

// runValidate is the observability output validator the CI smoke step uses:
// each comma-separated path is checked as a JSONL event trace (.jsonl) or a
// runreport/v1 document (anything else), and a one-line summary per file is
// printed. The first malformed file fails the run.
func runValidate(out io.Writer, paths string) error {
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if strings.HasSuffix(path, ".jsonl") {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			n, bySource, err := obs.ValidateJSONLTrace(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %v", path, err)
			}
			srcs := make([]string, 0, len(bySource))
			for src := range bySource {
				srcs = append(srcs, src)
			}
			sort.Strings(srcs)
			parts := make([]string, 0, len(srcs))
			for _, src := range srcs {
				parts = append(parts, fmt.Sprintf("%s=%d", src, bySource[src]))
			}
			fmt.Fprintf(out, "%s: ok, %d events (%s)\n", path, n, strings.Join(parts, " "))
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rep, err := obs.ValidateRunReport(data)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		nm := 0
		if rep.Metrics != nil {
			nm = len(rep.Metrics.Counters) + len(rep.Metrics.Gauges) + len(rep.Metrics.Histograms)
		}
		fmt.Fprintf(out, "%s: ok, %s from %s (%d phases, %d metrics, %d recovery entries)\n",
			path, rep.Schema, rep.Tool, len(rep.Phases), nm, len(rep.Recovery))
	}
	return nil
}

// torusDims factors n into a 3-D shape (x >= y >= z).
func torusDims(n int) torus.Dims {
	px, py, pz := commpat.Grid3D(n)
	return torus.Dims{X: pz, Y: py, Z: px}
}

type ftConfig struct {
	spec                string
	np, nodes           int
	layout, policy      string
	spares, maxRestarts int
	steps               int
	failNode, failRank  int
	failStep            int
	mtbf                float64
	seed                int64
	detect              int
	stepDelay           time.Duration
}

// runFT drives the full fault-tolerance pipeline: allocate compute nodes
// plus spares from a resource-manager pool, launch under supervision,
// inject the requested failures, and report the recovery metrics.
func runFT(out io.Writer, sp hw.Spec, obsFlags *obs.CLIFlags, o *obs.Observer,
	closeObs func() error, cfg ftConfig) error {
	policy, err := orte.ParseFTPolicy(cfg.policy)
	if err != nil {
		return err
	}
	layout, err := core.ParseLayout(cfg.layout)
	if err != nil {
		return err
	}
	pool := cluster.Homogeneous(cfg.nodes+cfg.spares, sp)
	mgr := rm.NewManager(pool)
	slots := cfg.nodes * usableCores(pool.Node(0))
	alloc, err := mgr.AllocWithSpares(rm.WholeNode, slots, cfg.spares)
	if err != nil {
		return err
	}
	sup := &orte.Supervisor{
		Runtime:    orte.NewRuntime(alloc.Granted),
		Layout:     layout,
		Opts:       core.Options{Obs: o},
		BindPolicy: bind.Specific,
		BindLevel:  hw.LevelPU,
		Config: orte.SuperviseConfig{
			Policy:          policy,
			MaxRestarts:     cfg.maxRestarts,
			DetectionWindow: cfg.detect,
			StepDelay:       cfg.stepDelay,
		},
		SpareProvider: func(failedNode int) (int, error) {
			res, err := mgr.Realloc(alloc, alloc.Granted.Nodes[failedNode].Name,
				rm.RetryConfig{Obs: o})
			if err != nil {
				return -1, err
			}
			return res.GrantedIndex, nil
		},
	}

	var plan orte.InjectionPlan
	if cfg.failRank >= 0 {
		plan.Failures = append(plan.Failures, orte.Failure{Rank: cfg.failRank, Step: cfg.failStep})
	}
	if cfg.failNode >= 0 {
		plan.NodeFailures = append(plan.NodeFailures, orte.NodeFailure{Node: cfg.failNode, Step: cfg.failStep})
	}
	if cfg.mtbf > 0 {
		fails, err := orte.MTBFSchedule(cfg.seed, cfg.np, cfg.steps, cfg.mtbf)
		if err != nil {
			return err
		}
		plan.Failures = append(plan.Failures, fails...)
	}

	fmt.Fprintf(out, "cluster: %d x %s + %d spare(s), layout %s, np=%d, steps=%d, ft=%s\n\n",
		cfg.nodes, cfg.spec, cfg.spares, cfg.layout, cfg.np, cfg.steps, policy)
	rep, err := sup.Run(cfg.np, cfg.steps, plan)
	if err != nil {
		return err
	}
	for _, ev := range rep.Events {
		fmt.Fprintf(out, "step %4d: %-8s failure from step %d, ranks %v", ev.DetectedStep, ev.Action, ev.FailStep, ev.Ranks)
		if len(ev.FailedNodes) > 0 {
			fmt.Fprintf(out, ", nodes %v", ev.FailedNodes)
		}
		if ev.Action == "respawn" {
			fmt.Fprintf(out, " (moved %d, replayed %d steps)", ev.RanksMoved, ev.ReplaySteps)
		}
		if ev.Reason != "" {
			fmt.Fprintf(out, ": %s", ev.Reason)
		}
		fmt.Fprintln(out)
	}
	if len(rep.Events) > 0 {
		fmt.Fprintln(out)
	}
	rsum := metrics.SummarizeRecovery(rep)
	fmt.Fprintln(out, rsum.Render())
	rsum.Record(o.Reg())
	if rep.Map != nil {
		metrics.Summarize(alloc.Granted, rep.Map).Record(o.Reg())
	}
	if err := closeObs(); err != nil {
		return err
	}
	report := o.Report("lamasim", map[string]any{
		"np": cfg.np, "nodes": cfg.nodes, "spec": cfg.spec, "layout": cfg.layout,
		"ft": policy.String(), "spares": cfg.spares, "steps": cfg.steps,
		"maxRestarts": cfg.maxRestarts, "detectionWindow": rep.DetectionWindow,
	})
	report.Recovery = recoveryTimeline(rep.Events)
	return obsFlags.WriteReport(report)
}

// recoveryTimeline converts the supervisor's recovery events into the run
// report's neutral timeline form.
func recoveryTimeline(events []orte.RecoveryEvent) []obs.TimelineEntry {
	var tl []obs.TimelineEntry
	for _, ev := range events {
		detail := map[string]any{"failStep": ev.FailStep, "ranks": ev.Ranks}
		if len(ev.FailedNodes) > 0 {
			detail["failedNodes"] = ev.FailedNodes
		}
		if ev.Reason != "" {
			detail["reason"] = ev.Reason
		}
		if ev.Action == "respawn" {
			detail["ranksMoved"] = ev.RanksMoved
			detail["replaySteps"] = ev.ReplaySteps
			detail["remapUs"] = ev.RemapUs
		}
		tl = append(tl, obs.TimelineEntry{Step: ev.DetectedStep, Action: ev.Action, Detail: detail})
	}
	return tl
}

// usableCores counts a node's usable cores with at least one usable PU.
func usableCores(n *cluster.Node) int {
	count := 0
	for _, c := range n.Topo.Objects(hw.LevelCore) {
		if c.Usable() && len(c.UsablePUs()) > 0 {
			count++
		}
	}
	return count
}
