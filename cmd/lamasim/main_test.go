package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStaticMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "32", "-nodes", "4", "-pattern", "ring"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static communication metrics", "treematch", "random", "lama csbnh"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestAppMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-np", "32", "-nodes", "4", "-mode", "app",
		"-compute", "100", "-iters", "10", "-pattern", "gtc"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BSP application") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestCollMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "16", "-nodes", "4", "-mode", "coll"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allreduce-ring") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestNetworks(t *testing.T) {
	for _, net := range []string{"flat", "fat-tree", "torus", "dragonfly"} {
		var out bytes.Buffer
		if err := run([]string{"-np", "16", "-nodes", "8", "-net", net}, &out); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-net", "quantum"},
		{"-pattern", "mystery"},
		{"-mode", "dance"},
		{"-spec", "bogus~"},
		{"-np", "9999", "-nodes", "1"}, // over capacity
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestTrafficFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "traffic.txt")
	text := "ranks 8\n0 1 1000000\n1 0 1000000\n2 3 500000\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-np", "8", "-nodes", "2", "-traffic", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "traffic.txt") {
		t.Fatalf("output:\n%s", out.String())
	}
	// Rank mismatch and missing file.
	var bad bytes.Buffer
	if err := run([]string{"-np", "9", "-nodes", "2", "-traffic", path}, &bad); err == nil {
		t.Fatal("rank mismatch should fail")
	}
	if err := run([]string{"-np", "8", "-traffic", "/nope"}, &bad); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestFluidMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-np", "16", "-nodes", "2", "-mode", "fluid", "-pattern", "ring"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fluid simulation") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFTRespawnMode(t *testing.T) {
	// The acceptance scenario: a node failure under respawn with one spare
	// completes every step, with restarts and migrated ranks in the
	// summary.
	var buf bytes.Buffer
	err := run([]string{"-np", "64", "-nodes", "8", "--ft=respawn", "--spares=1",
		"-fail-node", "0", "-fail-step", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ft=respawn", "respawn  failure from step 10",
		"completed                 yes",
		"restarts                  1",
		"ranks migrated            8",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFTAbortMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-np", "16", "-nodes", "2", "--ft=abort",
		"-fail-rank", "3", "-fail-step", "5", "-steps", "20"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"abort", "completed                 no", "aborted                   yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFTShrinkWithMTBF(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-np", "16", "-nodes", "2", "--ft=shrink",
		"-mtbf", "40", "-seed", "7", "-steps", "60"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	a := buf.String()
	var buf2 bytes.Buffer
	if err := run([]string{"-np", "16", "-nodes", "2", "--ft=shrink",
		"-mtbf", "40", "-seed", "7", "-steps", "60"}, &buf2); err != nil {
		t.Fatal(err)
	}
	if a != buf2.String() {
		t.Fatal("mtbf runs with the same seed must be identical")
	}
	if !strings.Contains(a, "shrink") {
		t.Fatalf("output:\n%s", a)
	}
}

func TestFTBadPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-np", "8", "-nodes", "2", "--ft=explode"}, &buf); err == nil {
		t.Fatal("bad policy should fail")
	}
}

// TestFTObservabilityRoundTrip is the acceptance path end to end: a
// supervised run writes a JSONL trace and a runreport/v1 document, the
// built-in validator accepts both, and the trace carries mapping, sweep-free
// recovery, and rm-free supervise events while the report carries the
// recovery timeline.
func TestFTObservabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	reportPath := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-np", "24", "-nodes", "4", "-ft", "respawn", "-spares", "1",
		"-fail-node", "0", "-fail-step", "10",
		"-trace-out", tracePath, "-metrics-out", reportPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// Validate both files through the same code path the CI step uses.
	var vout bytes.Buffer
	if err := run([]string{"-validate", tracePath + "," + reportPath}, &vout); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace.jsonl: ok", "report.json: ok, runreport/v1 from lamasim"} {
		if !strings.Contains(vout.String(), want) {
			t.Fatalf("validator output missing %q:\n%s", want, vout.String())
		}
	}

	// The trace must carry both the mapping engine's and the supervisor's
	// event streams.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"src":"map"`, `"src":"supervise"`, `"event":"detect"`,
		`"event":"realloc"`, `"event":"remap"`, `"event":"respawn"`} {
		if !strings.Contains(string(trace), want) {
			t.Fatalf("trace missing %s:\n%s", want, trace)
		}
	}

	report, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "runreport/v1"`, `"tool": "lamasim"`,
		`"action": "respawn"`, `"lama_restarts_total"`, `"lama_map_duration_us"`,
		`"lama_recovery_restarts"`, `"place"`, `"bind"`} {
		if !strings.Contains(string(report), want) {
			t.Fatalf("report missing %s:\n%s", want, report)
		}
	}
}

// TestValidateRejectsMalformed pins the validator's failure mode: a trace
// line without the reserved keys and a report with a wrong schema both fail.
func TestValidateRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"no":"src"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-validate", bad}, &out); err == nil {
		t.Fatal("src-less trace should fail validation")
	}
	badRep := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badRep, []byte(`{"schema":"runreport/v99","tool":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", badRep}, &out); err == nil {
		t.Fatal("wrong-schema report should fail validation")
	}
}
